"""The supervisor: crash-isolated request execution with retry policy.

:class:`Supervisor` is a drop-in ``handle(request) -> response`` front
for :class:`~repro.serve.service.AnalysisService` (same protocol, same
``serve_loop``/``run_batch`` compatibility) that executes every request
in a worker subprocess from a :class:`~repro.serve.pool.WorkerPool`:

* **Hard wall-clock kill.**  Each request gets a deadline — the tighter
  of the request/server budget ``deadline`` and ``request_timeout`` —
  plus ``grace`` seconds for serialization overhead.  A worker that
  blows it is SIGKILLed and the request answered with a structured
  *non-retriable* error: a cooperative budget should have tripped
  first, so a deadline overrun means the worker is wedged somewhere
  budgets cannot see (C-level loop, pathological GC), and rerunning the
  same request would wedge the replacement too.

* **Bounded retry with backoff.**  A worker that *dies* (segfault, OOM
  kill, injected SIGKILL) before responding is retriable: analysis is a
  pure function of the request, so the supervisor respawns and retries
  up to ``max_retries`` times with exponential backoff, then answers
  with a structured *retriable* error.  Either way the next request
  finds a fresh worker — a crash never takes the service down.

* **Resume-on-retry.**  Workers ship interim
  ``{"_interim": "checkpoint", ...}`` lines while a fixpoint runs (see
  :mod:`repro.serve.worker`); the supervisor retains the newest
  snapshot per request key and attaches it as ``"resume"`` on every
  crash retry, so each attempt continues from the last checkpointed
  pass instead of re-deriving everything.  The key hashes the request
  minus ``id``/``_chaos``/``resume``, so a resubmitted identical
  request also picks up where the crashed one stopped.

* **Crash-loop containment.**  A request whose workers keep dying
  *without advancing the checkpoint cursor* is a poison pill, not bad
  luck: after ``crash_loop_threshold`` consecutive no-progress crashes
  the request is quarantined and answered — now and on every identical
  resubmission — with a structured *non-retriable* ``"crash-loop"``
  error instead of burning more forks.  Any cursor advance or success
  resets the strike count; ``invalidate`` clears the quarantine.

Error responses carry machine-readable classification::

    {"ok": false, "error": "...", "error_kind": "worker-crash",
     "retriable": true, "attempts": 3}

``error_kind`` is ``"worker-crash"``, ``"timeout"`` or ``"crash-loop"``;
``retriable`` tells the client whether resubmitting the identical
request can succeed.

Deadline semantics under retry: each attempt gets a **fresh**
per-attempt kill timer (`_timeout_for`), because the budget deadline it
mirrors is re-armed inside each worker attempt; the whole retry chain
is additionally bounded by ``cumulative_timeout`` — once the chain has
consumed that much wall clock, no further retry is attempted and the
request is answered with a non-retriable ``"timeout"`` error.

Chaos injection: a :class:`~repro.robust.FaultPlan` with serve sites
armed makes the supervisor attach ``"_chaos"`` directives to outgoing
requests — ``kill_worker_at_request`` ordinals SIGKILL the worker on
receipt, ``delay_response_at_request`` ordinals stall the response past
the deadline.  Directives are stripped on retry, so an injected kill
exercises exactly one crash.  See :mod:`repro.bench.chaos`.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from typing import Dict, Optional

from ..robust import FaultPlan
from ..robust.checkpoint import cursor_iterations, snapshot_rank
from .pool import WorkerCrashed, WorkerPool, WorkerTimeout
from .service import ServiceConfig
from .worker import config_to_wire


@dataclass
class SupervisorConfig:
    """Pool and retry policy knobs (see module docstring)."""

    workers: int = 2
    #: Server-wide per-request wall-clock cap in seconds (None: only
    #: budget deadlines arm the kill timer).
    request_timeout: Optional[float] = None
    #: Slack added on top of the deadline before the SIGKILL: budget
    #: deadlines are checked cooperatively inside the worker, so a
    #: healthy worker answers (degraded) just after the deadline; only
    #: a wedged one reaches deadline + grace.
    grace: float = 1.0
    #: Crash retries per request (0 = fail fast on the first crash).
    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 1.0
    #: Wall-clock bound on a request's *whole retry chain* (all attempts
    #: plus backoff), while ``request_timeout`` bounds each attempt.
    #: None: the chain is bounded only by max_retries.
    cumulative_timeout: Optional[float] = None
    #: Consecutive worker crashes *without checkpoint-cursor advance*
    #: before a request is quarantined as a crash loop.
    crash_loop_threshold: int = 3


class Supervisor:
    """Crash-isolated, self-healing front for the analysis service."""

    def __init__(
        self,
        service_config: Optional[ServiceConfig] = None,
        config: Optional[SupervisorConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
        tracer=None,
    ):
        self.service_config = (
            service_config if service_config is not None else ServiceConfig()
        )
        self.config = config if config is not None else SupervisorConfig()
        self.fault_plan = fault_plan
        self.pool = WorkerPool(
            config_to_wire(self.service_config),
            size=self.config.workers,
            backoff_base=self.config.backoff_base,
            backoff_cap=self.config.backoff_cap,
        )
        self.requests_served = 0
        self.retries = 0
        self.timeouts = 0
        self.crashes_survived = 0
        #: repro.obs: the supervisor's aggregate registry.  Workers ship
        #: a "_metrics" delta on every response; it is popped off the
        #: wire here and merged (counters add, gauges max), so a
        #: ``metrics`` request answers with the whole fleet's view even
        #: though each worker only ever saw its own requests.
        from ..obs.metrics import MetricsRegistry

        self.metrics = MetricsRegistry()
        #: Optional process-named repro.obs.Tracer: the supervisor's
        #: own spans (one ``supervisor.execute`` per request, one
        #: ``worker.attempt`` per attempt) plus every worker's shipped
        #: ``_spans`` block, re-emitted verbatim so one request yields
        #: one stitched tree (docs/tracing.md).  ``None`` (the default)
        #: keeps every trace site a single identity check.
        self.tracer = tracer
        #: Newest checkpoint snapshot per request key, fed by workers'
        #: interim wire lines; attached as ``"resume"`` on crash retry.
        self._resume: Dict[str, dict] = {}
        #: Consecutive no-progress crash strikes per request key.
        self._strikes: Dict[str, int] = {}
        #: Quarantined request keys → the crash-loop error message.
        self._quarantine: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Request identity (for resume and crash-loop bookkeeping).

    @staticmethod
    def _request_key(request: dict) -> str:
        """A stable key for 'the same work': the request minus delivery
        metadata (``id``), injection (``_chaos``) and any snapshot a
        client attached (``resume``)."""
        bare = {
            key: value for key, value in request.items()
            if key not in ("id", "_chaos", "resume", "_trace")
        }
        canonical = json.dumps(
            bare, sort_keys=True, separators=(",", ":"), default=str
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # Deadlines.

    def _timeout_for(self, request: dict) -> Optional[float]:
        """The wall-clock kill limit for one request: the tightest of
        the request budget deadline, the server budget deadline and the
        configured request_timeout, plus grace; None = no kill timer."""
        candidates = []
        spec = request.get("budget")
        if isinstance(spec, dict) and spec.get("deadline") is not None:
            candidates.append(float(spec["deadline"]))
        server = self.service_config.budget
        if server is not None and server.deadline is not None:
            candidates.append(server.deadline)
        if self.config.request_timeout is not None:
            candidates.append(self.config.request_timeout)
        if not candidates:
            return None
        return min(candidates) + self.config.grace

    # ------------------------------------------------------------------
    # Request handling.

    def handle(self, request: dict) -> dict:
        """Execute one request in an isolated worker; mirrors
        :meth:`AnalysisService.handle` — never raises for request-level
        failures, and a dead worker is a request-level failure here."""
        started = time.perf_counter()
        op = request.get("op", "analyze")
        if op == "shutdown":
            response = {"ok": True, "shutdown": True, "op": "shutdown"}
            if "id" in request:
                response["id"] = request["id"]
            self.close()
            self.requests_served += 1
            return response
        if op == "metrics":
            # Answered from the aggregate: any single worker would only
            # report its own share of the fleet's work.
            response = {"ok": True, "metrics": self.metrics.snapshot()}
            if "id" in request:
                response["id"] = request["id"]
            response["op"] = "metrics"
        elif op == "invalidate":
            # A changed world also voids retained snapshots and any
            # quarantine verdicts — the "poison" may have been fixed.
            self._resume.clear()
            self._strikes.clear()
            self._quarantine.clear()
            response = self._broadcast(request)
        else:
            response = self._execute(request)
        if op == "stats" and response.get("ok"):
            response["supervisor"] = self.stats()
        self.requests_served += 1
        response["elapsed_total_ms"] = round(
            (time.perf_counter() - started) * 1000.0, 3
        )
        return response

    def _execute(self, request: dict) -> dict:
        tracer = self.tracer
        if tracer is None:
            return self._execute_supervised(request)
        context = request.get("_trace")
        tracer.begin(
            "supervisor.execute",
            _parent_ref=(
                context.get("parent")
                if isinstance(context, dict) else None
            ),
            op=str(request.get("op", "analyze")),
        )
        try:
            return self._execute_supervised(request)
        finally:
            tracer.end()

    def _execute_supervised(self, request: dict) -> dict:
        timeout = self._timeout_for(request)
        key = self._request_key(request)
        quarantined = self._quarantine.get(key)
        if quarantined is not None:
            # Crash-loop containment: a quarantined request is answered
            # immediately — no fork is burned on a known poison pill.
            self.metrics.counter("serve.worker.crash_loop_rejects").inc()
            return self._error_response(
                request,
                kind="crash-loop",
                retriable=False,
                attempts=0,
                message=quarantined,
            )
        payload = dict(request)
        if self.fault_plan is not None:
            chaos = dict(payload.get("_chaos") or {})
            if self.fault_plan.probe("request"):
                chaos["kill"] = True
            if self.fault_plan.probe("response"):
                chaos["delay"] = self.fault_plan.delay_seconds
            if chaos:
                payload["_chaos"] = chaos
        attempts = 0
        chain_started = time.monotonic()
        self.metrics.counter(
            "serve.worker.requests", op=str(request.get("op", "analyze"))
        ).inc()

        # Forward-progress clock, advanced by *every* interim snapshot
        # (even ones retention rejects): crash-loop detection must see
        # the cursor move when the attempt covered new ground, while
        # retention keeps the best-*ranked* snapshot — a thawed
        # verification-phase snapshot advances the clock but must not
        # clobber a frozen-frontier snapshot already held.
        progress = {"cursor": cursor_iterations(self._resume.get(key))}

        def note_interim(line: dict) -> None:
            snap = line.get("checkpoint")
            cursor = cursor_iterations(snap)
            if cursor > progress["cursor"]:
                progress["cursor"] = cursor
            if snapshot_rank(snap) >= snapshot_rank(self._resume.get(key)):
                self._resume[key] = snap

        while True:
            attempts += 1
            snapshot = self._resume.get(key)
            if snapshot is not None:
                payload["resume"] = snapshot
                self.metrics.counter("resume.wire_attached").inc()
            cursor_before = progress["cursor"]
            slot, worker = self.pool.checkout()
            tracer = self.tracer
            if tracer is not None:
                # One span per attempt.  A worker that answers ships its
                # own spans (absorbed below) nested under this one; a
                # worker that dies ships nothing, and ending the attempt
                # span ``aborted`` is the explicit tombstone that keeps
                # the stitched tree whole (docs/tracing.md).
                tracer.begin("worker.attempt", attempt=attempts, slot=slot)
                payload["_trace"] = tracer.current_context()
            try:
                response = worker.request(
                    payload, timeout, on_interim=note_interim
                )
            except WorkerTimeout:
                if tracer is not None:
                    tracer.end(aborted=True, error_kind="timeout")
                    self.metrics.counter("trace.aborted.synthesized").inc()
                self.timeouts += 1
                self.metrics.counter("serve.worker.timeouts").inc()
                self.metrics.counter("serve.worker.respawns").inc()
                self.pool.report_kill(slot)
                return self._error_response(
                    request,
                    kind="timeout",
                    retriable=False,
                    attempts=attempts,
                    message=(
                        f"no response within {timeout:.3f}s; "
                        "worker killed (SIGKILL)"
                    ),
                )
            except WorkerCrashed as error:
                if tracer is not None:
                    tracer.end(aborted=True, error_kind="worker-crash")
                    self.metrics.counter("trace.aborted.synthesized").inc()
                self.crashes_survived += 1
                self.metrics.counter("serve.worker.crashes").inc()
                self.metrics.counter("serve.worker.respawns").inc()
                self.pool.report_crash(slot)
                # An injected kill fired; the retry must run clean.
                payload.pop("_chaos", None)
                if progress["cursor"] > cursor_before:
                    # The crashed attempt still moved the fixpoint
                    # forward — that is not a loop, it is progress.
                    self._strikes[key] = 0
                else:
                    strikes = self._strikes.get(key, 0) + 1
                    self._strikes[key] = strikes
                    if strikes >= self.config.crash_loop_threshold:
                        message = (
                            f"crash loop: {strikes} consecutive worker "
                            "crashes with no fixpoint progress; request "
                            "quarantined"
                        )
                        self._quarantine[key] = message
                        self.metrics.counter("serve.worker.crash_loops").inc()
                        return self._error_response(
                            request,
                            kind="crash-loop",
                            retriable=False,
                            attempts=attempts,
                            message=message,
                        )
                cumulative = self.config.cumulative_timeout
                if (
                    cumulative is not None
                    and time.monotonic() - chain_started >= cumulative
                ):
                    self.metrics.counter("serve.worker.timeouts").inc()
                    return self._error_response(
                        request,
                        kind="timeout",
                        retriable=False,
                        attempts=attempts,
                        message=(
                            f"retry chain exceeded cumulative timeout "
                            f"{cumulative:.3f}s"
                        ),
                    )
                if attempts <= self.config.max_retries:
                    self.retries += 1
                    self.metrics.counter("serve.worker.retries").inc()
                    continue  # pool backoff throttles the respawn
                return self._error_response(
                    request,
                    kind="worker-crash",
                    retriable=True,
                    attempts=attempts,
                    message=str(error),
                )
            else:
                self.pool.report_success(slot)
                self._absorb_metrics(response)
                self._absorb_spans(response)
                if tracer is not None:
                    tracer.end()
                self._strikes.pop(key, None)
                self._resume.pop(key, None)  # the work is done; GC
                response["worker"] = slot
                if attempts > 1:
                    response["attempts"] = attempts
                return response

    def _absorb_metrics(self, response: dict) -> None:
        """Pop a worker's shipped "_metrics" delta and fold it in; a
        malformed delta is dropped, never fatal (the worker already
        answered the actual request)."""
        delta = response.pop("_metrics", None)
        if not isinstance(delta, dict):
            return
        try:
            self.metrics.merge(delta)
        except (ValueError, KeyError, TypeError, IndexError):
            pass

    def _absorb_spans(self, response: dict) -> None:
        """Pop a worker's shipped "_spans" block and re-emit the records
        into this supervisor's trace sink; without a tracer the block is
        dropped (it must never reach the client either way)."""
        spans = response.pop("_spans", None)
        if not isinstance(spans, list) or self.tracer is None:
            return
        try:
            absorbed = self.tracer.emit_foreign(spans)
        except (OSError, ValueError, TypeError):
            return
        if absorbed:
            self.metrics.counter("trace.spans.absorbed").inc(absorbed)

    def _error_response(
        self, request, kind: str, retriable: bool, attempts: int, message: str
    ) -> dict:
        response = {
            "ok": False,
            "error": message,
            "error_kind": kind,
            "retriable": retriable,
            "attempts": attempts,
            "op": request.get("op", "analyze"),
        }
        if "id" in request:
            response["id"] = request["id"]
        return response

    def _broadcast(self, request: dict) -> dict:
        """Send one request to every live worker (cache invalidation
        must reach each worker's in-memory store; the shared disk store
        is cleared by whichever worker gets there first)."""
        response = {"ok": True, "op": request.get("op")}
        workers = self.pool.workers()
        if not workers:
            workers = [self.pool.checkout()]
        for slot, worker in workers:
            try:
                answer = worker.request(dict(request), self._timeout_for(request))
            except (WorkerCrashed, WorkerTimeout):
                self.pool.report_crash(slot)
                self.metrics.counter("serve.worker.respawns").inc()
                continue
            self.pool.report_success(slot)
            self._absorb_metrics(answer)
            self._absorb_spans(answer)
            response.update(
                (key, value) for key, value in answer.items()
                if key not in ("elapsed_ms",)
            )
        if "id" in request:
            response["id"] = request["id"]
        return response

    # ------------------------------------------------------------------

    def stats(self) -> dict:
        return {
            "requests_served": self.requests_served,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "crashes_survived": self.crashes_survived,
            "quarantined": len(self._quarantine),
            "retained_checkpoints": len(self._resume),
            "pool": self.pool.stats(),
            "metrics": self.metrics.snapshot(),
        }

    def close(self) -> None:
        self.pool.close()
        if self.tracer is not None:
            # Ends anything still open (marked aborted) and flushes the
            # shared sink; the sink itself belongs to whoever opened it.
            self.tracer.close()

    def __enter__(self) -> "Supervisor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["Supervisor", "SupervisorConfig"]
