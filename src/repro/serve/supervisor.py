"""The supervisor: crash-isolated request execution with retry policy.

:class:`Supervisor` is a drop-in ``handle(request) -> response`` front
for :class:`~repro.serve.service.AnalysisService` (same protocol, same
``serve_loop``/``run_batch`` compatibility) that executes every request
in a worker subprocess from a :class:`~repro.serve.pool.WorkerPool`:

* **Hard wall-clock kill.**  Each request gets a deadline — the tighter
  of the request/server budget ``deadline`` and ``request_timeout`` —
  plus ``grace`` seconds for serialization overhead.  A worker that
  blows it is SIGKILLed and the request answered with a structured
  *non-retriable* error: a cooperative budget should have tripped
  first, so a deadline overrun means the worker is wedged somewhere
  budgets cannot see (C-level loop, pathological GC), and rerunning the
  same request would wedge the replacement too.

* **Bounded retry with backoff.**  A worker that *dies* (segfault, OOM
  kill, injected SIGKILL) before responding is retriable: analysis is a
  pure function of the request, so the supervisor respawns and retries
  up to ``max_retries`` times with exponential backoff, then answers
  with a structured *retriable* error.  Either way the next request
  finds a fresh worker — a crash never takes the service down.

Error responses carry machine-readable classification::

    {"ok": false, "error": "...", "error_kind": "worker-crash",
     "retriable": true, "attempts": 3}

``error_kind`` is ``"worker-crash"`` or ``"timeout"``; ``retriable``
tells the client whether resubmitting the identical request can
succeed.

Chaos injection: a :class:`~repro.robust.FaultPlan` with serve sites
armed makes the supervisor attach ``"_chaos"`` directives to outgoing
requests — ``kill_worker_at_request`` ordinals SIGKILL the worker on
receipt, ``delay_response_at_request`` ordinals stall the response past
the deadline.  Directives are stripped on retry, so an injected kill
exercises exactly one crash.  See :mod:`repro.bench.chaos`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from ..robust import FaultPlan
from .pool import WorkerCrashed, WorkerPool, WorkerTimeout
from .service import ServiceConfig
from .worker import config_to_wire


@dataclass
class SupervisorConfig:
    """Pool and retry policy knobs (see module docstring)."""

    workers: int = 2
    #: Server-wide per-request wall-clock cap in seconds (None: only
    #: budget deadlines arm the kill timer).
    request_timeout: Optional[float] = None
    #: Slack added on top of the deadline before the SIGKILL: budget
    #: deadlines are checked cooperatively inside the worker, so a
    #: healthy worker answers (degraded) just after the deadline; only
    #: a wedged one reaches deadline + grace.
    grace: float = 1.0
    #: Crash retries per request (0 = fail fast on the first crash).
    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 1.0


class Supervisor:
    """Crash-isolated, self-healing front for the analysis service."""

    def __init__(
        self,
        service_config: Optional[ServiceConfig] = None,
        config: Optional[SupervisorConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
    ):
        self.service_config = (
            service_config if service_config is not None else ServiceConfig()
        )
        self.config = config if config is not None else SupervisorConfig()
        self.fault_plan = fault_plan
        self.pool = WorkerPool(
            config_to_wire(self.service_config),
            size=self.config.workers,
            backoff_base=self.config.backoff_base,
            backoff_cap=self.config.backoff_cap,
        )
        self.requests_served = 0
        self.retries = 0
        self.timeouts = 0
        self.crashes_survived = 0
        #: repro.obs: the supervisor's aggregate registry.  Workers ship
        #: a "_metrics" delta on every response; it is popped off the
        #: wire here and merged (counters add, gauges max), so a
        #: ``metrics`` request answers with the whole fleet's view even
        #: though each worker only ever saw its own requests.
        from ..obs.metrics import MetricsRegistry

        self.metrics = MetricsRegistry()

    # ------------------------------------------------------------------
    # Deadlines.

    def _timeout_for(self, request: dict) -> Optional[float]:
        """The wall-clock kill limit for one request: the tightest of
        the request budget deadline, the server budget deadline and the
        configured request_timeout, plus grace; None = no kill timer."""
        candidates = []
        spec = request.get("budget")
        if isinstance(spec, dict) and spec.get("deadline") is not None:
            candidates.append(float(spec["deadline"]))
        server = self.service_config.budget
        if server is not None and server.deadline is not None:
            candidates.append(server.deadline)
        if self.config.request_timeout is not None:
            candidates.append(self.config.request_timeout)
        if not candidates:
            return None
        return min(candidates) + self.config.grace

    # ------------------------------------------------------------------
    # Request handling.

    def handle(self, request: dict) -> dict:
        """Execute one request in an isolated worker; mirrors
        :meth:`AnalysisService.handle` — never raises for request-level
        failures, and a dead worker is a request-level failure here."""
        started = time.perf_counter()
        op = request.get("op", "analyze")
        if op == "shutdown":
            response = {"ok": True, "shutdown": True, "op": "shutdown"}
            if "id" in request:
                response["id"] = request["id"]
            self.close()
            self.requests_served += 1
            return response
        if op == "metrics":
            # Answered from the aggregate: any single worker would only
            # report its own share of the fleet's work.
            response = {"ok": True, "metrics": self.metrics.snapshot()}
            if "id" in request:
                response["id"] = request["id"]
            response["op"] = "metrics"
        elif op == "invalidate":
            response = self._broadcast(request)
        else:
            response = self._execute(request)
        if op == "stats" and response.get("ok"):
            response["supervisor"] = self.stats()
        self.requests_served += 1
        response["elapsed_total_ms"] = round(
            (time.perf_counter() - started) * 1000.0, 3
        )
        return response

    def _execute(self, request: dict) -> dict:
        timeout = self._timeout_for(request)
        payload = dict(request)
        if self.fault_plan is not None:
            chaos = {}
            if self.fault_plan.probe("request"):
                chaos["kill"] = True
            if self.fault_plan.probe("response"):
                chaos["delay"] = self.fault_plan.delay_seconds
            if chaos:
                payload["_chaos"] = chaos
        attempts = 0
        self.metrics.counter(
            "serve.worker.requests", op=str(request.get("op", "analyze"))
        ).inc()
        while True:
            attempts += 1
            slot, worker = self.pool.checkout()
            try:
                response = worker.request(payload, timeout)
            except WorkerTimeout:
                self.timeouts += 1
                self.metrics.counter("serve.worker.timeouts").inc()
                self.metrics.counter("serve.worker.respawns").inc()
                self.pool.report_kill(slot)
                return self._error_response(
                    request,
                    kind="timeout",
                    retriable=False,
                    attempts=attempts,
                    message=(
                        f"no response within {timeout:.3f}s; "
                        "worker killed (SIGKILL)"
                    ),
                )
            except WorkerCrashed as error:
                self.crashes_survived += 1
                self.metrics.counter("serve.worker.crashes").inc()
                self.metrics.counter("serve.worker.respawns").inc()
                self.pool.report_crash(slot)
                # An injected kill fired; the retry must run clean.
                payload.pop("_chaos", None)
                if attempts <= self.config.max_retries:
                    self.retries += 1
                    self.metrics.counter("serve.worker.retries").inc()
                    continue  # pool backoff throttles the respawn
                return self._error_response(
                    request,
                    kind="worker-crash",
                    retriable=True,
                    attempts=attempts,
                    message=str(error),
                )
            else:
                self.pool.report_success(slot)
                self._absorb_metrics(response)
                response["worker"] = slot
                if attempts > 1:
                    response["attempts"] = attempts
                return response

    def _absorb_metrics(self, response: dict) -> None:
        """Pop a worker's shipped "_metrics" delta and fold it in; a
        malformed delta is dropped, never fatal (the worker already
        answered the actual request)."""
        delta = response.pop("_metrics", None)
        if not isinstance(delta, dict):
            return
        try:
            self.metrics.merge(delta)
        except (ValueError, KeyError, TypeError, IndexError):
            pass

    def _error_response(
        self, request, kind: str, retriable: bool, attempts: int, message: str
    ) -> dict:
        response = {
            "ok": False,
            "error": message,
            "error_kind": kind,
            "retriable": retriable,
            "attempts": attempts,
            "op": request.get("op", "analyze"),
        }
        if "id" in request:
            response["id"] = request["id"]
        return response

    def _broadcast(self, request: dict) -> dict:
        """Send one request to every live worker (cache invalidation
        must reach each worker's in-memory store; the shared disk store
        is cleared by whichever worker gets there first)."""
        response = {"ok": True, "op": request.get("op")}
        workers = self.pool.workers()
        if not workers:
            workers = [self.pool.checkout()]
        for slot, worker in workers:
            try:
                answer = worker.request(dict(request), self._timeout_for(request))
            except (WorkerCrashed, WorkerTimeout):
                self.pool.report_crash(slot)
                self.metrics.counter("serve.worker.respawns").inc()
                continue
            self.pool.report_success(slot)
            self._absorb_metrics(answer)
            response.update(
                (key, value) for key, value in answer.items()
                if key not in ("elapsed_ms",)
            )
        if "id" in request:
            response["id"] = request["id"]
        return response

    # ------------------------------------------------------------------

    def stats(self) -> dict:
        return {
            "requests_served": self.requests_served,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "crashes_survived": self.crashes_survived,
            "pool": self.pool.stats(),
            "metrics": self.metrics.snapshot(),
        }

    def close(self) -> None:
        self.pool.close()

    def __enter__(self) -> "Supervisor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["Supervisor", "SupervisorConfig"]
