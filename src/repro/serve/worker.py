"""The worker-subprocess side of the supervised pool.

``python -m repro.serve.worker`` is spawned by
:class:`repro.serve.pool.WorkerPool`.  Protocol, all JSON lines on
stdin/stdout: the first line is the wire-encoded
:class:`~repro.serve.service.ServiceConfig`; every later line is one
request, answered by exactly one response line.  The worker is the
crash-isolation boundary — a segfault, OOM kill, or runaway recursion
takes down this process, never the service: the supervisor reaps the
corpse, spawns a replacement, and retries or answers with a structured
error.

Requests may carry a ``"_chaos"`` directive (injected by the
supervisor's :class:`~repro.robust.FaultPlan`, or by a test driving the
protocol directly); it is stripped before the request reaches the
service:

* ``{"kill": true}`` — SIGKILL *this* process on receipt, before any
  response: the deterministic stand-in for a segfault mid-request;
* ``{"delay": seconds}`` — compute the response, then sleep before
  writing it: the stand-in for a runaway request that must be killed by
  the supervisor's wall-clock timer;
* ``{"exit": code}`` — exit immediately with ``code``;
* ``{"kill_at_iteration": m}`` — SIGKILL this process at the m-th
  fixpoint pass of the request, *after* that pass's checkpoint
  decision: the deterministic stand-in for a crash mid-fixpoint, used
  by the chaos campaign to prove checkpointed resume.

Besides the one response line per request, the worker may emit
**interim lines** ``{"_interim": "checkpoint", "checkpoint": {...}}``
— one per snapshot the service's
:class:`~repro.robust.checkpoint.CheckpointPolicy` emits.  The
supervisor retains the newest one per request key and attaches it as
``"resume"`` when it retries after a crash, so a killed worker's
fixpoint progress survives even without a shared disk store.

Requests may also carry a ``"_trace"`` context (see docs/tracing.md):
``{"trace": "<id>", "parent": "<process>:<span>"}``.  The worker then
opens its root span *under* the supervisor's span — a per-request
:class:`~repro.obs.Tracer` buffers the request's spans in memory and
the completed records ship up as a ``"_spans"`` block next to
``"_metrics"``.  A worker that dies mid-request ships nothing; the
supervisor synthesizes an explicitly aborted attempt span instead, so
the stitched tree stays well formed.  Without ``"_trace"`` the cost is
one dict ``pop`` per request.

Python-level failures that *can* be caught (a bug in the analyzer, a
``RecursionError`` that unwound cleanly) are answered in-process as
``{"ok": false, ...}`` — only genuinely fatal events cost a worker.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import time
from typing import Optional

from ..robust import Budget
from .service import AnalysisService, ServiceConfig

# ----------------------------------------------------------------------
# ServiceConfig over the wire.  Budgets flatten to a plain dict; every
# field is JSON-native already.

_CONFIG_FIELDS = (
    "depth",
    "list_aware",
    "subsumption",
    "on_undefined",
    "environment_trimming",
    "library",
    "max_entries",
    "max_bytes",
    "store_dir",
    "journal",
    "checkpoint_every",
)

_BUDGET_FIELDS = ("max_steps", "max_iterations", "max_table_entries", "deadline")


def config_to_wire(config: ServiceConfig) -> dict:
    """A JSON-safe dict that :func:`config_from_wire` reverses."""
    wire = {name: getattr(config, name) for name in _CONFIG_FIELDS}
    budget = config.budget
    wire["budget"] = (
        {name: getattr(budget, name) for name in _BUDGET_FIELDS}
        if budget is not None
        else None
    )
    return wire


def config_from_wire(wire: dict) -> ServiceConfig:
    config = ServiceConfig(
        **{name: wire[name] for name in _CONFIG_FIELDS if name in wire}
    )
    budget = wire.get("budget")
    if budget is not None:
        config.budget = Budget(
            **{name: budget.get(name) for name in _BUDGET_FIELDS}
        )
    return config


# ----------------------------------------------------------------------
# The request loop.


def _apply_chaos_on_receipt(chaos: Optional[dict]) -> None:
    if not chaos:
        return
    if chaos.get("exit") is not None:
        os._exit(int(chaos["exit"]))
    if chaos.get("kill"):
        os.kill(os.getpid(), signal.SIGKILL)


class _SpanBuffer:
    """A Tracer sink that keeps the request's records in memory."""

    __slots__ = ("lines",)

    def __init__(self):
        self.lines = []

    def write(self, line: str) -> None:
        self.lines.append(line)

    def flush(self) -> None:
        pass

    def records(self):
        return [json.loads(line) for line in self.lines]


def worker_loop(stdin, stdout) -> int:
    """Config line, then request/response lines until EOF or shutdown."""
    first = stdin.readline()
    if not first.strip():
        return 0
    try:
        config = config_from_wire(json.loads(first))
    except (ValueError, TypeError) as error:
        stdout.write(json.dumps(
            {"ok": False, "error": f"bad worker config: {error}"}
        ) + "\n")
        stdout.flush()
        return 2
    service = AnalysisService(config)

    def ship_checkpoint(snap: dict) -> None:
        stdout.write(json.dumps(
            {"_interim": "checkpoint", "checkpoint": snap}, sort_keys=True
        ) + "\n")
        stdout.flush()

    service.checkpoint_wire_sink = ship_checkpoint
    #: Per-request trace sequence: each traced request gets a fresh
    #: span-id namespace ("worker-<pid>.<seq>"), so a worker reused
    #: across requests never reuses a stitched span id.
    trace_seq = 0
    for line in stdin:
        line = line.strip()
        if not line:
            continue
        chaos = None
        try:
            request = json.loads(line)
        except ValueError as error:
            response = {"ok": False, "error": f"bad JSON: {error}"}
        else:
            if isinstance(request, dict):
                chaos = request.pop("_chaos", None)
                _apply_chaos_on_receipt(chaos)
                if chaos and chaos.get("kill_at_iteration") is not None:
                    service.kill_at_iteration = int(chaos["kill_at_iteration"])
                trace_context = request.pop("_trace", None)
                buffer = None
                if isinstance(trace_context, dict):
                    from ..obs.trace import Tracer

                    trace_seq += 1
                    buffer = _SpanBuffer()
                    service.tracer = Tracer(
                        buffer,
                        process=f"worker-{os.getpid()}.{trace_seq}",
                        context=trace_context,
                    )
                try:
                    response = service.handle(request)
                except Exception as error:  # the isolation boundary
                    response = {
                        "ok": False,
                        "error": f"worker exception: {error!r}",
                    }
                finally:
                    service.kill_at_iteration = None
                if buffer is not None:
                    # close() ends anything a caught failure left open
                    # (marked aborted), so the shipped block is always
                    # a complete per-process trace.
                    service.tracer.close()
                    service.tracer = None
                    spans = buffer.records()
                    if spans:
                        response["_spans"] = spans
                        service.metrics.counter(
                            "trace.spans.shipped"
                        ).inc(len(spans))
                # Ship what this request changed in the worker's
                # registry; the supervisor pops "_metrics" and merges
                # it into its aggregate (see docs/observability.md).
                delta = service.metrics.delta()
                if delta:
                    response["_metrics"] = delta
            else:
                response = {"ok": False, "error": "request must be an object"}
        if chaos and chaos.get("delay"):
            time.sleep(float(chaos["delay"]))
        stdout.write(json.dumps(response, sort_keys=True) + "\n")
        stdout.flush()
        if response.get("shutdown"):
            break
    return 0


def main() -> int:
    return worker_loop(sys.stdin, sys.stdout)


if __name__ == "__main__":
    sys.exit(main())
