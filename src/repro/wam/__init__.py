"""The Warren Abstract Machine: instruction set, compiler, and engine.

Typical use::

    from repro.prolog import Program, parse_term
    from repro.wam import Machine, compile_program

    compiled = compile_program(Program.from_text("p(a). p(b)."))
    machine = Machine(compiled)
    for solution in machine.run(parse_term("p(X)")):
        print(solution["X"])
"""

from .assembler import assemble_instruction, assemble_unit
from .builtins import MACHINE_BUILTIN_INDICATORS, MACHINE_BUILTINS
from .cells import CON, FUN, LIS, REF, STR, Cell, Heap, cell_type
from .code import CodeArea, PredicateCode
from .compile import (
    CompiledProgram,
    CompilerOptions,
    FAIL_ADDRESS,
    HALT_ADDRESS,
    compile_clause,
    compile_predicate,
    compile_program,
)
from .instructions import Instr, Label, Reg, xreg, yreg
from .listing import disassemble, format_instruction, format_unit
from .machine import ChoicePoint, Environment, Machine
from .trace import TraceLine, Tracer

__all__ = [
    "CON",
    "assemble_instruction",
    "assemble_unit",
    "Cell",
    "ChoicePoint",
    "CodeArea",
    "CompiledProgram",
    "CompilerOptions",
    "Environment",
    "FAIL_ADDRESS",
    "FUN",
    "HALT_ADDRESS",
    "Heap",
    "Instr",
    "LIS",
    "Label",
    "MACHINE_BUILTINS",
    "MACHINE_BUILTIN_INDICATORS",
    "Machine",
    "PredicateCode",
    "REF",
    "Reg",
    "STR",
    "TraceLine",
    "Tracer",
    "cell_type",
    "compile_clause",
    "compile_predicate",
    "compile_program",
    "disassemble",
    "format_instruction",
    "format_unit",
    "xreg",
    "yreg",
]
