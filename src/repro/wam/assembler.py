"""A WAM assembler: parse listing text back into instructions.

The inverse of :mod:`repro.wam.listing` for unlinked units: labels are
lines ending in ``:``, operands are registers (``A1``/``X3``/``Y2``),
quoted or plain constants, functor indicators (``f/2``), labels, and
integers. ``assemble_unit`` round-trips with ``format_unit``, which the
tests verify over every compiled benchmark; it also makes hand-written
WAM code runnable:

    unit = assemble_unit('''
        get_constant a, A1
        proceed
    ''', ("p", 1))
    code = CodeArea(); code.link([unit])
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple, Union

from ..errors import CompileError
from ..prolog.parser import parse_term
from ..prolog.terms import Atom, Float, Indicator, Int
from .code import PredicateCode
from .instructions import Instr, Label, Reg

_REGISTER = re.compile(r"^([AXY])(\d+)$")
_INDICATOR = re.compile(r"^(.+)/(\d+)$")

#: opcode -> operand shape signature.
#: r = register (A→x), a = argument position (A1 → 1), c = constant,
#: f = indicator, t = jump target (label or address), n = integer,
#: T = switch table {key: target, ...}, 4 = four targets.
_SIGNATURES: Dict[str, str] = {
    "put_variable": "ra",
    "put_value": "ra",
    "put_constant": "ca",
    "put_nil": "a",
    "put_list": "r",
    "put_structure": "fr",
    "get_variable": "ra",
    "get_value": "ra",
    "get_constant": "ca",
    "get_nil": "a",
    "get_list": "r",
    "get_structure": "fr",
    "unify_variable": "r",
    "unify_value": "r",
    "unify_constant": "c",
    "unify_nil": "",
    "unify_void": "n",
    "allocate": "n",
    "deallocate": "",
    "call": "fn",
    "execute": "f",
    "builtin": "f",
    "proceed": "",
    "neck_cut": "",
    "get_level": "r",
    "cut": "r",
    "fail": "",
    "halt": "",
    "try_me_else": "t",
    "retry_me_else": "t",
    "trust_me": "",
    "try": "t",
    "retry": "t",
    "trust": "t",
    "switch_on_term": "4",
    "switch_on_constant": "T",
    "switch_on_structure": "T",
}

# Specialized opcodes (repro.opt) share their base opcode's shape.
from .instructions import SPECIALIZED_BASE as _SPECIALIZED_BASE  # noqa: E402

for _op, _base in _SPECIALIZED_BASE.items():
    _SIGNATURES[_op] = _SIGNATURES[_base]


def _parse_register(text: str) -> Reg:
    match = _REGISTER.match(text)
    if not match:
        raise CompileError(f"bad register {text!r}")
    kind = {"A": "x", "X": "x", "Y": "y"}[match.group(1)]
    return Reg(kind, int(match.group(2)))


def _parse_argument_position(text: str) -> int:
    match = _REGISTER.match(text)
    if not match or match.group(1) not in ("A", "X"):
        raise CompileError(f"bad argument register {text!r}")
    return int(match.group(2))


def _parse_constant(text: str):
    term = parse_term(text)
    if not isinstance(term, (Atom, Int, Float)):
        raise CompileError(f"bad constant {text!r}")
    return term


def _parse_indicator(text: str) -> Indicator:
    match = _INDICATOR.match(text)
    if not match:
        raise CompileError(f"bad indicator {text!r}")
    name = match.group(1)
    if name.startswith("'") and name.endswith("'") and len(name) > 1:
        parsed = parse_term(name)
        assert isinstance(parsed, Atom)
        name = parsed.name
    return (name, int(match.group(2)))


def _parse_target(text: str) -> Union[Label, int]:
    try:
        return int(text)
    except ValueError:
        return Label(text)


def _split_operands(text: str) -> List[str]:
    """Split on commas not inside quotes or braces."""
    parts: List[str] = []
    depth = 0
    quote = False
    current = []
    for char in text:
        if char == "'" and not quote:
            quote = True
        elif char == "'" and quote:
            quote = False
        if not quote:
            if char in "{[(":
                depth += 1
            elif char in "}])":
                depth -= 1
            if char == "," and depth == 0:
                parts.append("".join(current).strip())
                current = []
                continue
        current.append(char)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def _parse_table(text: str) -> Tuple[Tuple[object, Union[Label, int]], ...]:
    text = text.strip()
    if not (text.startswith("{") and text.endswith("}")):
        raise CompileError(f"bad switch table {text!r}")
    inner = text[1:-1].strip()
    entries = []
    if inner:
        for pair in _split_operands(inner):
            key_text, _, target_text = pair.rpartition(":")
            key_text = key_text.strip()
            target_text = target_text.strip()
            if _INDICATOR.match(key_text) and not key_text.lstrip("-").isdigit():
                key: object = _parse_indicator(key_text)
            else:
                key = _parse_constant(key_text)
            entries.append((key, _parse_target(target_text)))
    return tuple(sorted(entries, key=lambda kv: str(kv[0])))


def _strip_comment(line: str) -> str:
    """Drop a ``%`` comment, respecting quoted atoms."""
    quote = False
    for index, char in enumerate(line):
        if char == "'":
            quote = not quote
        elif char == "%" and not quote:
            return line[:index]
    return line


def assemble_instruction(line: str) -> Instr:
    """Parse one instruction line."""
    line = line.strip()
    space = line.find(" ")
    if space < 0:
        op, rest = line, ""
    else:
        op, rest = line[:space], line[space + 1 :].strip()
    signature = _SIGNATURES.get(op)
    if signature is None:
        raise CompileError(f"unknown opcode {op!r}")
    if signature == "4":
        operands = _split_operands(rest)
        if len(operands) != 4:
            raise CompileError(f"switch_on_term needs 4 targets: {line!r}")
        return Instr(op, tuple(_parse_target(o) for o in operands))
    if signature == "T":
        # ``{...}`` optionally followed by ``else <target>`` (optimizer
        # switches route table misses to the variable-keyed chain).
        table_text, separator, default_text = rest.rpartition(" else ")
        if separator:
            return Instr(
                op,
                (_parse_table(table_text), _parse_target(default_text.strip())),
            )
        return Instr(op, (_parse_table(rest),))
    operands = _split_operands(rest) if rest else []
    if len(operands) != len(signature):
        raise CompileError(
            f"{op} expects {len(signature)} operand(s), got {len(operands)}"
        )
    parsed: List[object] = []
    for shape, text in zip(signature, operands):
        if shape == "r":
            parsed.append(_parse_register(text))
        elif shape == "a":
            parsed.append(_parse_argument_position(text))
        elif shape == "c":
            parsed.append(_parse_constant(text))
        elif shape == "f":
            parsed.append(_parse_indicator(text))
        elif shape == "t":
            parsed.append(_parse_target(text))
        elif shape == "n":
            parsed.append(int(text))
        else:  # pragma: no cover
            raise CompileError(f"bad signature shape {shape!r}")
    return Instr(op, tuple(parsed))


def assemble_unit(
    text: str,
    indicator: Indicator,
    clause_labels: Optional[List[str]] = None,
) -> PredicateCode:
    """Assemble a whole unit: instructions and ``label:`` lines.

    ``clause_labels`` names the labels that mark clause entries (for the
    abstract machine); defaults to labels matching ``c<digits>``.
    """
    instructions: List[Instr] = []
    seen_labels: List[str] = []
    for raw in text.splitlines():
        line = _strip_comment(raw).strip()
        if not line:
            continue
        if line.endswith(":") and " " not in line:
            name = line[:-1]
            seen_labels.append(name)
            instructions.append(Instr("label", (Label(name),)))
            continue
        instructions.append(assemble_instruction(line))
    if clause_labels is None:
        clause_labels = [
            name for name in seen_labels if re.fullmatch(r"c\d+", name)
        ]
    return PredicateCode(
        indicator=indicator,
        instructions=instructions,
        clause_count=len(clause_labels),
        clause_labels=[Label(name) for name in clause_labels],
    )
