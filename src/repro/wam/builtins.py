"""Inline builtins of the concrete WAM.

Each builtin is a function ``fn(machine) -> bool`` operating on the
argument registers; ``False`` triggers backtracking.  All machine builtins
are deterministic — nondeterministic library predicates (``between/3``,
``member/2``, ``append/3``, ...) are provided as plain Prolog in
:mod:`repro.prolog.library` and compiled like user code.

The compiler consults :data:`MACHINE_BUILTIN_INDICATORS` so that exactly
the predicates listed here compile to ``builtin`` instructions.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from ..errors import MachineError, PrologError
from ..prolog.arith import compare_numeric, eval_arith, number_term
from ..prolog.terms import (
    NIL,
    Atom,
    Float,
    Indicator,
    Int,
    Struct,
    Term,
    Var,
    is_proper_list,
    list_elements,
    make_list,
)
from ..prolog.writer import term_to_text
from .cells import CON, FUN, LIS, REF, STR, Cell

BuiltinFn = Callable[[object], bool]


# ----------------------------------------------------------------------
# Cell-level helpers.

def _deref1(machine) -> Cell:
    return machine.heap.deref(machine.get_x(1))


def _compare_cells(machine, left: Cell, right: Cell) -> int:
    """Standard order of terms on cells: Var < Number < Atom < Compound."""
    heap = machine.heap
    left = heap.deref(left)
    right = heap.deref(right)

    def rank(cell: Cell) -> int:
        if cell[0] == REF:
            return 0
        if cell[0] == CON:
            return 1 if isinstance(cell[1], (Int, Float)) else 2
        return 3

    rank_left, rank_right = rank(left), rank(right)
    if rank_left != rank_right:
        return -1 if rank_left < rank_right else 1
    if rank_left == 0:
        return (left[1] > right[1]) - (left[1] < right[1])  # type: ignore[operator]
    if rank_left == 1:
        a, b = left[1].value, right[1].value  # type: ignore[union-attr]
        return (a > b) - (a < b)
    if rank_left == 2:
        a, b = left[1].name, right[1].name  # type: ignore[union-attr]
        return (a > b) - (a < b)
    functor_left = _functor_of(machine, left)
    functor_right = _functor_of(machine, right)
    key_left = (functor_left[1], functor_left[0])
    key_right = (functor_right[1], functor_right[0])
    if key_left != key_right:
        return -1 if key_left < key_right else 1
    for offset in range(functor_left[1]):
        result = _compare_cells(
            machine,
            _argument_cell(machine, left, offset),
            _argument_cell(machine, right, offset),
        )
        if result != 0:
            return result
    return 0


def _functor_of(machine, cell: Cell) -> Indicator:
    if cell[0] == LIS:
        return (".", 2)
    assert cell[0] == STR
    return machine.heap.cells[cell[1]][1]


def _argument_cell(machine, cell: Cell, offset: int) -> Cell:
    if cell[0] == LIS:
        return machine.heap.cells[cell[1] + offset]
    return machine.heap.cells[cell[1] + 1 + offset]


# ----------------------------------------------------------------------
# Control and unification.

def _bi_true(machine) -> bool:
    return True


def _bi_fail(machine) -> bool:
    return False


def _bi_unify(machine) -> bool:
    return machine.unify(machine.get_x(1), machine.get_x(2))


def _bi_not_unify(machine) -> bool:
    mark = machine.heap.trail_mark()
    result = machine.unify(machine.get_x(1), machine.get_x(2))
    machine.heap.undo_to(mark)
    return not result


def _structural(op: str) -> BuiltinFn:
    def builtin(machine) -> bool:
        result = _compare_cells(machine, machine.get_x(1), machine.get_x(2))
        return {
            "==": result == 0,
            "\\==": result != 0,
            "@<": result < 0,
            "@>": result > 0,
            "@=<": result <= 0,
            "@>=": result >= 0,
        }[op]

    return builtin


def _bi_compare(machine) -> bool:
    result = _compare_cells(machine, machine.get_x(2), machine.get_x(3))
    symbol = Atom("<" if result < 0 else ">" if result > 0 else "=")
    return machine.unify(machine.get_x(1), (CON, symbol))


# ----------------------------------------------------------------------
# Type tests.

def _type_test(predicate: Callable[[Cell], bool]) -> BuiltinFn:
    def builtin(machine) -> bool:
        return predicate(machine.heap.deref(machine.get_x(1)))

    return builtin


def _is_atom(cell: Cell) -> bool:
    return cell[0] == CON and isinstance(cell[1], Atom)


def _is_number(cell: Cell) -> bool:
    return cell[0] == CON and isinstance(cell[1], (Int, Float))


# ----------------------------------------------------------------------
# Arithmetic.

def _decode_arg(machine, position: int) -> Term:
    return machine.heap.decode(machine.get_x(position))


def _bi_is(machine) -> bool:
    expression = _decode_arg(machine, 2)
    value = eval_arith(expression, lambda t: t)
    return machine.unify(machine.get_x(1), (CON, number_term(value)))


def _arith_compare(op: str) -> BuiltinFn:
    def builtin(machine) -> bool:
        left = eval_arith(_decode_arg(machine, 1), lambda t: t)
        right = eval_arith(_decode_arg(machine, 2), lambda t: t)
        return compare_numeric(op, left, right)

    return builtin


# ----------------------------------------------------------------------
# Term construction and inspection.

def _bi_functor(machine) -> bool:
    heap = machine.heap
    cell = _deref1(machine)
    if cell[0] != REF:
        functor: Term
        if cell[0] == CON:
            functor, arity = cell[1], 0  # type: ignore[assignment]
        else:
            name, arity = _functor_of(machine, cell)
            functor = Atom(name)
        return machine.unify(
            machine.get_x(2), (CON, functor)
        ) and machine.unify(machine.get_x(3), (CON, Int(arity)))
    name_cell = heap.deref(machine.get_x(2))
    arity_cell = heap.deref(machine.get_x(3))
    if name_cell[0] == REF or arity_cell[0] == REF:
        raise PrologError("instantiation_error", "functor/3")
    if arity_cell[0] != CON or not isinstance(arity_cell[1], Int):
        raise PrologError("type_error", "functor/3 arity must be an integer")
    arity = arity_cell[1].value
    if arity == 0:
        return machine.unify(cell, name_cell)
    if name_cell[0] != CON or not isinstance(name_cell[1], Atom):
        raise PrologError("type_error", "functor/3 name must be an atom")
    name = name_cell[1].name
    if name == "." and arity == 2:
        address = heap.top
        heap.new_var()
        heap.new_var()
        return machine.unify(cell, (LIS, address))
    functor_address = heap.push((FUN, (name, arity)))
    for _ in range(arity):
        heap.new_var()
    return machine.unify(cell, (STR, functor_address))


def _bi_arg(machine) -> bool:
    heap = machine.heap
    index_cell = heap.deref(machine.get_x(1))
    term_cell = heap.deref(machine.get_x(2))
    if index_cell[0] != CON or not isinstance(index_cell[1], Int):
        raise PrologError("type_error", "arg/3 index must be an integer")
    if term_cell[0] not in (LIS, STR):
        raise PrologError("type_error", "arg/3 term must be compound")
    arity = _functor_of(machine, term_cell)[1]
    index = index_cell[1].value
    if not 1 <= index <= arity:
        return False
    return machine.unify(
        machine.get_x(3), _argument_cell(machine, term_cell, index - 1)
    )


def _bi_univ(machine) -> bool:
    heap = machine.heap
    cell = _deref1(machine)
    if cell[0] != REF:
        if cell[0] == CON:
            items: List[Cell] = [cell]
        else:
            name, arity = _functor_of(machine, cell)
            items = [(CON, Atom(name))] + [
                _argument_cell(machine, cell, offset) for offset in range(arity)
            ]
        list_cell: Cell = (CON, NIL)
        for item in reversed(items):
            address = heap.top
            heap.push(item)
            heap.push(list_cell)
            list_cell = (LIS, address)
        return machine.unify(machine.get_x(2), list_cell)
    # Construction side: decode the list of cells.
    items = []
    current = heap.deref(machine.get_x(2))
    while current[0] == LIS:
        items.append(heap.cells[current[1]])  # type: ignore[index]
        current = heap.deref(heap.cells[current[1] + 1])  # type: ignore[index]
    if current != (CON, NIL):
        raise PrologError("instantiation_error", "=../2 needs a proper list")
    if not items:
        raise PrologError("domain_error", "=../2 with empty list")
    head = heap.deref(items[0])
    if len(items) == 1:
        return machine.unify(cell, head)
    if head[0] != CON or not isinstance(head[1], Atom):
        raise PrologError("type_error", "=../2 functor must be an atom")
    name = head[1].name
    arguments = items[1:]
    if name == "." and len(arguments) == 2:
        address = heap.top
        heap.push(arguments[0])
        heap.push(arguments[1])
        return machine.unify(cell, (LIS, address))
    functor_address = heap.push((FUN, (name, len(arguments))))
    for argument in arguments:
        heap.push(argument)
    return machine.unify(cell, (STR, functor_address))


def _bi_copy_term(machine) -> bool:
    term = machine.heap.decode(machine.get_x(1))
    copy_cell = machine.heap.encode(term, {})
    return machine.unify(machine.get_x(2), copy_cell)


# ----------------------------------------------------------------------
# Output (buffered on the machine).

def _bi_write(machine) -> bool:
    machine.output.append(term_to_text(_decode_arg(machine, 1)))
    return True


def _bi_writeq(machine) -> bool:
    machine.output.append(term_to_text(_decode_arg(machine, 1), quoted=True))
    return True


def _bi_nl(machine) -> bool:
    machine.output.append("\n")
    return True


def _bi_tab(machine) -> bool:
    count = eval_arith(_decode_arg(machine, 1), lambda t: t)
    machine.output.append(" " * int(count))
    return True


def _bi_atom_length(machine) -> bool:
    cell = _deref1(machine)
    if not _is_atom(cell):
        raise PrologError("type_error", "atom_length/2 expects an atom")
    return machine.unify(machine.get_x(2), (CON, Int(len(cell[1].name))))  # type: ignore[union-attr]


def _bi_name(machine) -> bool:
    heap = machine.heap
    cell = _deref1(machine)
    if cell[0] == CON:
        if isinstance(cell[1], Atom):
            text = cell[1].name
        elif isinstance(cell[1], Int):
            text = str(cell[1].value)
        else:
            text = repr(cell[1].value)  # type: ignore[union-attr]
        codes = make_list([Int(ord(ch)) for ch in text])
        return machine.unify(machine.get_x(2), heap.encode(codes))
    spec = heap.decode(machine.get_x(2))
    if not is_proper_list(spec):
        raise PrologError("instantiation_error", "name/2")
    items, _ = list_elements(spec)
    characters = []
    for item in items:
        if not isinstance(item, Int):
            raise PrologError("type_error", "name/2 expects character codes")
        characters.append(chr(item.value))
    text = "".join(characters)
    try:
        result: Term = Int(int(text))
    except ValueError:
        result = Atom(text)
    return machine.unify(cell, (CON, result))


MACHINE_BUILTINS: Dict[Indicator, BuiltinFn] = {
    ("true", 0): _bi_true,
    ("fail", 0): _bi_fail,
    ("false", 0): _bi_fail,
    ("=", 2): _bi_unify,
    ("\\=", 2): _bi_not_unify,
    ("==", 2): _structural("=="),
    ("\\==", 2): _structural("\\=="),
    ("@<", 2): _structural("@<"),
    ("@>", 2): _structural("@>"),
    ("@=<", 2): _structural("@=<"),
    ("@>=", 2): _structural("@>="),
    ("compare", 3): _bi_compare,
    ("var", 1): _type_test(lambda c: c[0] == REF),
    ("nonvar", 1): _type_test(lambda c: c[0] != REF),
    ("atom", 1): _type_test(_is_atom),
    ("number", 1): _type_test(_is_number),
    ("integer", 1): _type_test(lambda c: c[0] == CON and isinstance(c[1], Int)),
    ("float", 1): _type_test(lambda c: c[0] == CON and isinstance(c[1], Float)),
    ("atomic", 1): _type_test(lambda c: c[0] == CON),
    ("compound", 1): _type_test(lambda c: c[0] in (LIS, STR)),
    ("callable", 1): _type_test(lambda c: _is_atom(c) or c[0] in (LIS, STR)),
    ("is", 2): _bi_is,
    ("=:=", 2): _arith_compare("=:="),
    ("=\\=", 2): _arith_compare("=\\="),
    ("<", 2): _arith_compare("<"),
    (">", 2): _arith_compare(">"),
    ("=<", 2): _arith_compare("=<"),
    (">=", 2): _arith_compare(">="),
    ("functor", 3): _bi_functor,
    ("arg", 3): _bi_arg,
    ("=..", 2): _bi_univ,
    ("copy_term", 2): _bi_copy_term,
    ("write", 1): _bi_write,
    ("writeq", 1): _bi_writeq,
    ("print", 1): _bi_write,
    ("nl", 0): _bi_nl,
    ("tab", 1): _bi_tab,
    ("atom_length", 2): _bi_atom_length,
    ("name", 2): _bi_name,
}

#: The set the compiler treats as inline builtins.
MACHINE_BUILTIN_INDICATORS = frozenset(MACHINE_BUILTINS.keys())
