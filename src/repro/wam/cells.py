"""Tagged heap cells for the concrete WAM.

A cell is a ``(tag, value)`` tuple:

* ``('ref', a)`` — a variable; unbound iff ``heap[a] == ('ref', a)``;
* ``('con', c)`` — a constant, ``c`` an AST :class:`Atom`/`Int`/`Float`;
* ``('lis', a)`` — a list cell: car at ``heap[a]``, cdr at ``heap[a+1]``;
* ``('str', a)`` — a structure: ``heap[a]`` is the functor cell and the
  arguments follow it;
* ``('fun', (name, arity))`` — a functor cell (only reachable via 'str').

:class:`Heap` bundles the cell store with the value trail shared by the
concrete and abstract machines: every destructive cell update is recorded
as ``(address, old_cell)`` so backtracking can restore any overwrite, not
just variable bindings (the abstract machine *instantiates* non-variable
cells, which an address-only trail could not undo).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import MachineError
from ..prolog.terms import (
    NIL,
    Atom,
    Float,
    Int,
    Struct,
    Term,
    Var,
    is_cons,
)

Cell = Tuple[str, object]

REF = "ref"
CON = "con"
LIS = "lis"
STR = "str"
FUN = "fun"


class Heap:
    """The global term store plus the value trail.

    Besides cells, the heap carries a *sharing component*: a union-find
    over cell addresses recording possible aliasing that the cell
    structure itself cannot express (it arises in the abstract machine
    when summarized information — list element types, success patterns —
    is re-materialized as fresh cells).  Unions are journaled on the same
    trail as cell updates, so backtracking rolls them back.
    """

    def __init__(self) -> None:
        self.cells: List[Cell] = []
        self.trail: List[tuple] = []
        self.share_parent: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Allocation.

    @property
    def top(self) -> int:
        return len(self.cells)

    def push(self, cell: Cell) -> int:
        """Append a cell; returns its address."""
        self.cells.append(cell)
        return len(self.cells) - 1

    def new_var(self) -> Cell:
        """Allocate an unbound variable; returns its (self-)ref cell."""
        address = len(self.cells)
        cell: Cell = (REF, address)
        self.cells.append(cell)
        return cell

    # ------------------------------------------------------------------
    # Binding and trailing.

    def set_cell(self, address: int, cell: Cell) -> None:
        """Destructively update a cell, recording the old value."""
        self.trail.append((address, self.cells[address]))
        self.cells[address] = cell

    def trail_mark(self) -> int:
        return len(self.trail)

    def undo_to(self, mark: int, heap_mark: Optional[int] = None) -> None:
        """Unwind the trail to ``mark``; optionally truncate the heap."""
        while len(self.trail) > mark:
            entry = self.trail.pop()
            if len(entry) == 3:
                # A sharing-component union: restore the old parent link.
                _, address, old_parent = entry
                if old_parent is None:
                    self.share_parent.pop(address, None)
                else:
                    self.share_parent[address] = old_parent
                continue
            address, old = entry
            if heap_mark is None or address < heap_mark:
                self.cells[address] = old
        if heap_mark is not None:
            del self.cells[heap_mark:]

    # ------------------------------------------------------------------
    # The sharing component (see the class docstring).

    def share_find(self, address: int) -> int:
        """Class representative of an address (no path compression, so
        undoing a union never invalidates other links)."""
        parent = self.share_parent.get(address)
        while parent is not None:
            address = parent
            parent = self.share_parent.get(address)
        return address

    def share_union(self, left: int, right: int) -> None:
        """Merge two sharing classes (journaled for backtracking)."""
        root_left = self.share_find(left)
        root_right = self.share_find(right)
        if root_left == root_right:
            return
        self.trail.append(
            ("share", root_left, self.share_parent.get(root_left))
        )
        self.share_parent[root_left] = root_right

    # ------------------------------------------------------------------
    # Dereferencing.

    def deref(self, cell: Cell) -> Cell:
        """Follow reference chains to the representative cell."""
        while cell[0] == REF:
            target = self.cells[cell[1]]
            if target == cell:
                return cell
            cell = target
        return cell

    def is_unbound(self, cell: Cell) -> bool:
        cell = self.deref(cell)
        return cell[0] == REF

    # ------------------------------------------------------------------
    # Conversion to and from AST terms.

    def decode(self, cell: Cell, names: Optional[Dict[int, Var]] = None) -> Term:
        """Convert a cell (and everything it references) to an AST term."""
        if names is None:
            names = {}
        cell = self.deref(cell)
        tag, value = cell
        if tag == REF:
            variable = names.get(value)  # type: ignore[arg-type]
            if variable is None:
                variable = Var()
                names[value] = variable  # type: ignore[index]
            return variable
        if tag == CON:
            return value  # type: ignore[return-value]
        if tag == LIS:
            address = value
            head = self.decode(self.cells[address], names)
            tail = self.decode(self.cells[address + 1], names)
            return Struct(".", (head, tail))
        if tag == STR:
            functor_cell = self.cells[value]  # type: ignore[index]
            if functor_cell[0] != FUN:
                raise MachineError(f"str cell points at {functor_cell}")
            name, arity = functor_cell[1]  # type: ignore[misc]
            args = [
                self.decode(self.cells[value + 1 + i], names)  # type: ignore[operator]
                for i in range(arity)
            ]
            return Struct(name, tuple(args))
        raise MachineError(f"cannot decode cell {cell}")

    def encode(self, term: Term, variables: Optional[Dict[int, Cell]] = None) -> Cell:
        """Build ``term`` on the heap; returns its cell.

        ``variables`` maps ``id(Var)`` to already-allocated cells so shared
        variables stay shared.
        """
        if variables is None:
            variables = {}
        if isinstance(term, Var):
            existing = variables.get(id(term))
            if existing is None:
                existing = self.new_var()
                variables[id(term)] = existing
            return existing
        if isinstance(term, (Atom, Int, Float)):
            return (CON, term)
        assert isinstance(term, Struct)
        if is_cons(term):
            arg_cells = [
                self.encode(term.args[0], variables),
                self.encode(term.args[1], variables),
            ]
            address = self.top
            self.cells.extend(arg_cells)
            return (LIS, address)
        arg_cells = [self.encode(argument, variables) for argument in term.args]
        functor_address = self.push((FUN, (term.name, term.arity)))
        self.cells.extend(arg_cells)
        return (STR, functor_address)


def cell_type(cell: Cell) -> str:
    """The switch_on_term class of a dereferenced cell:
    'var', 'const', 'list' or 'struct'."""
    tag = cell[0]
    if tag == REF:
        return "var"
    if tag == CON:
        return "const"
    if tag == LIS:
        return "list"
    if tag == STR:
        return "struct"
    raise MachineError(f"unexpected cell {cell}")
