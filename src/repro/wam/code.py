"""The code area: linked WAM code with a predicate entry table.

The compiler emits per-predicate instruction sequences containing symbolic
:class:`~repro.wam.instructions.Label` operands and ``label`` pseudo
instructions.  :class:`CodeArea` concatenates them, assigns absolute
addresses, resolves labels (including the targets inside switch tables) and
records each predicate's entry address.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import CompileError
from ..prolog.terms import Indicator, format_indicator
from .instructions import Instr, Label


@dataclass
class PredicateCode:
    """Unlinked code for one predicate."""

    indicator: Indicator
    instructions: List[Instr]
    clause_count: int
    #: Entry addresses of each clause, as labels (for the abstract machine,
    #: which enumerates clauses directly instead of using indexing code).
    clause_labels: List[Label] = field(default_factory=list)


class CodeArea:
    """Linked code for a whole program."""

    def __init__(self) -> None:
        self.instructions: List[Instr] = []
        self.entry: Dict[Indicator, int] = {}
        #: Per-predicate clause entry addresses (same order as source).
        self.clause_entries: Dict[Indicator, List[int]] = {}
        #: Reverse map address -> predicate owning that code (for listings).
        self.owners: Dict[int, Indicator] = {}

    # ------------------------------------------------------------------

    def link(self, units: List[PredicateCode]) -> None:
        """Concatenate, resolve labels, and build the entry table."""
        addresses: Dict[Tuple[Indicator, str], int] = {}
        placed: List[Tuple[Indicator, Instr]] = []
        position = len(self.instructions)
        for unit in units:
            if unit.indicator in self.entry:
                raise CompileError(
                    f"duplicate code for {format_indicator(unit.indicator)}"
                )
            self.entry[unit.indicator] = position
            self.owners[position] = unit.indicator
            for instruction in unit.instructions:
                if instruction.op == "label":
                    label = instruction.args[0]
                    assert isinstance(label, Label)
                    key = (unit.indicator, label.name)
                    if key in addresses:
                        raise CompileError(f"duplicate label {label.name}")
                    addresses[key] = position
                else:
                    placed.append((unit.indicator, instruction))
                    position += 1
        resolved = [
            self._resolve(indicator, instruction, addresses)
            for indicator, instruction in placed
        ]
        self.instructions.extend(resolved)
        for unit in units:
            self.clause_entries[unit.indicator] = [
                addresses[(unit.indicator, label.name)]
                for label in unit.clause_labels
            ]

    def _resolve(
        self,
        indicator: Indicator,
        instruction: Instr,
        addresses: Dict[Tuple[Indicator, str], int],
    ) -> Instr:
        def fix(value: object) -> object:
            if isinstance(value, Label):
                key = (indicator, value.name)
                if key not in addresses:
                    raise CompileError(
                        f"undefined label {value.name} in "
                        f"{format_indicator(indicator)}"
                    )
                return addresses[key]
            if isinstance(value, tuple):
                return tuple(fix(item) for item in value)
            return value

        if not instruction.args:
            return instruction
        return Instr(instruction.op, tuple(fix(arg) for arg in instruction.args))

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.instructions)

    def at(self, address: int) -> Instr:
        return self.instructions[address]

    def predicate_at(self, address: int) -> Optional[Indicator]:
        """The predicate whose code region contains ``address``."""
        best: Optional[Indicator] = None
        best_entry = -1
        for entry, indicator in self.owners.items():
            if best_entry < entry <= address:
                best_entry = entry
                best = indicator
        return best

    def size_of(self, indicator: Indicator) -> int:
        """Static code size (instruction count) of one predicate."""
        entries = sorted(self.owners.keys())
        start = self.entry[indicator]
        following = [e for e in entries if e > start]
        end = following[0] if following else len(self.instructions)
        return end - start
