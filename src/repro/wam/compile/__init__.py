"""The Prolog-to-WAM compiler.

Layered bottom-up:

* :mod:`.classify` — clause analysis (chunks, permanents, slots);
* :mod:`.clause` — instruction emission for one clause;
* :mod:`.predicate` — clause chains and first-argument indexing;
* :mod:`.program` — whole-program linking and query compilation.
"""

from .classify import ClauseAnalysis, analyze_clause, goal_kind
from .clause import CompilerOptions, compile_clause
from .predicate import FAIL_TARGET, compile_predicate
from .program import (
    FAIL_ADDRESS,
    HALT_ADDRESS,
    PROCEED_ADDRESS,
    CompiledProgram,
    compile_program,
)

__all__ = [
    "ClauseAnalysis",
    "CompiledProgram",
    "CompilerOptions",
    "FAIL_ADDRESS",
    "FAIL_TARGET",
    "HALT_ADDRESS",
    "PROCEED_ADDRESS",
    "analyze_clause",
    "compile_clause",
    "compile_predicate",
    "compile_program",
    "goal_kind",
]
