"""Clause analysis: chunks, permanent variables, register allocation.

Warren's classification: a clause body is split into *chunks* at user
predicate calls (inline builtins and cut do not end a chunk; the head
belongs to the first chunk).  A variable occurring in more than one chunk
must survive a call, so it becomes *permanent* and lives in a Y slot of the
clause's environment; all other variables are *temporary* and live in X
registers.

Permanent slots are numbered so that variables dying later get smaller
indexes, which is what makes environment trimming possible: after each call
the environment can be truncated to the slots still live.

Temporary variables get dedicated X registers above the maximum argument
arity used anywhere in the clause, so argument-register loading can never
clobber a live temporary.  This forgoes the classic register-coalescing
optimizations but keeps the generated code obviously correct; instruction
counts stay within a small constant factor of an optimizing compiler's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..builtins import MACHINE_BUILTIN_INDICATORS
from ...prolog.program import Clause
from ...prolog.terms import (
    Atom,
    Struct,
    Term,
    Var,
    indicator_of,
)
from ..instructions import Reg, xreg, yreg

CUT = Atom("!")


def goal_kind(goal: Term, builtin_indicators=MACHINE_BUILTIN_INDICATORS) -> str:
    """Classify a body goal: ``cut``, ``builtin`` or ``call``."""
    if goal == CUT:
        return "cut"
    if goal.is_callable() and indicator_of(goal) in builtin_indicators:
        return "builtin"
    return "call"


@dataclass
class VarUse:
    """Where one variable occurs within a clause."""

    var: Var
    chunks: Set[int] = field(default_factory=set)
    occurrences: int = 0
    register: Optional[Reg] = None

    @property
    def is_permanent(self) -> bool:
        return len(self.chunks) > 1

    @property
    def last_chunk(self) -> int:
        return max(self.chunks)


@dataclass
class ClauseAnalysis:
    """Everything the emitter needs to know about one clause."""

    clause: Clause
    #: goal kinds, parallel to ``clause.body``.
    kinds: List[str]
    #: chunk index of each body goal (head is chunk 0).
    goal_chunks: List[int]
    chunk_count: int
    variables: Dict[int, VarUse]
    needs_environment: bool
    #: Y slots used, including the cut-level slot if any.
    slot_count: int
    #: Y slot holding the saved cut barrier, or None.
    level_slot: Optional[int]
    #: True when the clause contains a cut after the first user call.
    has_deep_cut: bool
    #: True when the clause contains a cut in the first chunk.
    has_neck_cut: bool
    #: first X index available for temporaries.
    temp_start: int
    #: count of permanents still live after the k-th call (for trimming).
    live_after_call: List[int]

    def use(self, variable: Var) -> VarUse:
        return self.variables[id(variable)]


def _collect_vars(term: Term, chunk: int, variables: Dict[int, VarUse]) -> None:
    stack = [term]
    while stack:
        current = stack.pop()
        if isinstance(current, Var):
            if current.name == "_":
                continue
            use = variables.get(id(current))
            if use is None:
                use = VarUse(current)
                variables[id(current)] = use
            use.chunks.add(chunk)
            use.occurrences += 1
        elif isinstance(current, Struct):
            stack.extend(reversed(current.args))


def _max_arity(clause: Clause) -> int:
    arities = [0]
    for term in [clause.head] + clause.body:
        if isinstance(term, Struct):
            arities.append(term.arity)
    return max(arities)


def analyze_clause(clause: Clause, builtin_indicators=MACHINE_BUILTIN_INDICATORS) -> ClauseAnalysis:
    """Run the full clause analysis; see the module docstring."""
    kinds = [goal_kind(goal, builtin_indicators) for goal in clause.body]

    # Chunk assignment: head is chunk 0; each user call ends its chunk.
    goal_chunks: List[int] = []
    chunk = 0
    for kind in kinds:
        goal_chunks.append(chunk)
        if kind == "call":
            chunk += 1
    chunk_count = chunk + 1

    variables: Dict[int, VarUse] = {}
    _collect_vars(clause.head, 0, variables)
    for goal, goal_chunk in zip(clause.body, goal_chunks):
        _collect_vars(goal, goal_chunk, variables)

    call_positions = [i for i, kind in enumerate(kinds) if kind == "call"]
    call_count = len(call_positions)

    # Cut classification.
    has_neck_cut = False
    has_deep_cut = False
    for position, kind in enumerate(kinds):
        if kind != "cut":
            continue
        if goal_chunks[position] == 0:
            has_neck_cut = True
        else:
            has_deep_cut = True

    permanents = [use for use in variables.values() if use.is_permanent]
    # A call that is not the final goal forces an environment (the
    # continuation must be preserved); so do permanents and deep cuts.
    non_tail_call = any(
        position < len(kinds) - 1 for position in call_positions
    )
    needs_environment = bool(permanents) or non_tail_call or has_deep_cut

    # Slot assignment: later-dying variables first (smaller Y indexes).
    permanents.sort(key=lambda use: use.last_chunk, reverse=True)
    slot = 0
    level_slot: Optional[int] = None
    if has_deep_cut:
        # The level slot must survive until the last cut; give it Y1 so it
        # is never trimmed away before the final deep cut runs.
        slot += 1
        level_slot = slot
    for use in permanents:
        slot += 1
        use.register = yreg(slot)
    slot_count = slot

    temp_start = _max_arity(clause) + 1

    # Trimming: permanents live after the k-th user call are those whose
    # last chunk is beyond chunk k (chunks after call k have index > k).
    last_cut_chunk = max(
        (goal_chunks[i] for i, kind in enumerate(kinds) if kind == "cut"),
        default=-1,
    )
    live_after_call: List[int] = []
    for call_index in range(call_count):
        live_permanents = sum(1 for use in permanents if use.last_chunk > call_index)
        if level_slot is None:
            trim_to = live_permanents
        elif live_permanents > 0:
            # Permanent slots start at Y2 when a level slot exists, so the
            # highest live slot is live_permanents + 1.
            trim_to = live_permanents + 1
        else:
            # Keep the level slot while a later cut may still need it.
            trim_to = 1 if last_cut_chunk > call_index else 0
        live_after_call.append(trim_to)

    return ClauseAnalysis(
        clause=clause,
        kinds=kinds,
        goal_chunks=goal_chunks,
        chunk_count=chunk_count,
        variables=variables,
        needs_environment=needs_environment,
        slot_count=slot_count,
        level_slot=level_slot,
        has_deep_cut=has_deep_cut,
        has_neck_cut=has_neck_cut,
        temp_start=temp_start,
        live_after_call=live_after_call,
    )
