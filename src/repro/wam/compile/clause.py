"""Compilation of a single clause to WAM instructions.

Head arguments compile to ``get``/``unify`` sequences processed breadth
first (exactly the order shown in Figure 2 of the paper: all subterms of
one level are unified before descending), body goal arguments compile to
``put``/``unify`` sequences built bottom-up, and the procedural skeleton
implements environments, last-call optimization and cut.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Set, Tuple

from ...errors import CompileError
from ...prolog.program import Clause
from ...prolog.terms import (
    NIL,
    Atom,
    Float,
    Int,
    Struct,
    Term,
    Var,
    indicator_of,
    is_cons,
)
from .. import instructions as ins
from ..instructions import Instr, Reg, xreg, yreg
from .classify import ClauseAnalysis, VarUse, analyze_clause


class CompilerOptions:
    """Switches for the code generator.

    ``indexing`` enables first-argument ``switch_on_term`` dispatch;
    ``environment_trimming`` makes ``call`` carry the live-slot count so
    environments shrink as permanents die (the paper notes trimming is
    overkill for the *abstract* machine — the ablation benchmark measures
    that claim).
    """

    def __init__(self, indexing: bool = True, environment_trimming: bool = True):
        self.indexing = indexing
        self.environment_trimming = environment_trimming


class ClauseEmitter:
    """Generates the instruction list for one analyzed clause."""

    def __init__(
        self,
        analysis: ClauseAnalysis,
        options: CompilerOptions,
        builtin_indicators,
    ):
        self.analysis = analysis
        self.options = options
        self.builtin_indicators = builtin_indicators
        self.code: List[Instr] = []
        self.next_temp = analysis.temp_start
        self._seen: Set[int] = set()

    # ------------------------------------------------------------------
    # Register helpers.

    def _fresh_temp(self) -> Reg:
        register = xreg(self.next_temp)
        self.next_temp += 1
        return register

    def _register_of(self, variable: Var) -> Reg:
        use = self.analysis.use(variable)
        if use.register is None:
            use.register = self._fresh_temp()
        return use.register

    def _first_occurrence(self, variable: Var) -> bool:
        if id(variable) in self._seen:
            return False
        self._seen.add(id(variable))
        return True

    # ------------------------------------------------------------------
    # Head compilation (get/unify, read side).

    def emit_head(self, head: Term) -> None:
        if isinstance(head, Atom):
            return
        assert isinstance(head, Struct)
        queue: Deque[Tuple[Reg, Struct]] = deque()
        for position, argument in enumerate(head.args, start=1):
            self._emit_head_argument(argument, position, queue)
        while queue:
            register, term = queue.popleft()
            self._emit_get_compound(term, register, queue)

    def _emit_head_argument(
        self, argument: Term, position: int, queue: Deque[Tuple[Reg, Struct]]
    ) -> None:
        if isinstance(argument, Var):
            if argument.name == "_":
                return
            register = self._register_of(argument)
            if self._first_occurrence(argument):
                self.code.append(ins.get_variable(register, position))
            else:
                self.code.append(ins.get_value(register, position))
            return
        if argument == NIL:
            self.code.append(ins.get_nil(position))
            return
        if isinstance(argument, (Atom, Int, Float)):
            self.code.append(ins.get_constant(argument, position))
            return
        assert isinstance(argument, Struct)
        self._emit_get_compound(argument, xreg(position), queue, top=True)

    def _emit_get_compound(
        self,
        term: Struct,
        register: Reg,
        queue: Deque[Tuple[Reg, Struct]],
        top: bool = False,
    ) -> None:
        if is_cons(term):
            self.code.append(ins.get_list(register))
        else:
            self.code.append(ins.get_structure(term.indicator, register))
        self._emit_unify_arguments(term.args, queue)

    def _emit_unify_arguments(
        self, arguments: Tuple[Term, ...], queue: Deque[Tuple[Reg, Struct]]
    ) -> None:
        void_run = 0

        def flush_void() -> None:
            nonlocal void_run
            if void_run:
                self.code.append(ins.unify_void(void_run))
                void_run = 0

        for argument in arguments:
            if isinstance(argument, Var):
                if argument.name == "_":
                    void_run += 1
                    continue
                flush_void()
                register = self._register_of(argument)
                if self._first_occurrence(argument):
                    self.code.append(ins.unify_variable(register))
                else:
                    self.code.append(ins.unify_value(register))
                continue
            flush_void()
            if argument == NIL:
                self.code.append(ins.unify_nil())
            elif isinstance(argument, (Atom, Int, Float)):
                self.code.append(ins.unify_constant(argument))
            else:
                assert isinstance(argument, Struct)
                temp = self._fresh_temp()
                self.code.append(ins.unify_variable(temp))
                queue.append((temp, argument))
        flush_void()

    # ------------------------------------------------------------------
    # Body goal argument loading (put/unify, write side).

    def emit_goal_arguments(self, goal: Term) -> None:
        if isinstance(goal, Atom):
            return
        assert isinstance(goal, Struct)
        for position, argument in enumerate(goal.args, start=1):
            self._emit_put_argument(argument, position)

    def _emit_put_argument(self, argument: Term, position: int) -> None:
        if isinstance(argument, Var):
            if argument.name == "_":
                self.code.append(ins.put_variable(self._fresh_temp(), position))
                return
            register = self._register_of(argument)
            if self._first_occurrence(argument):
                self.code.append(ins.put_variable(register, position))
            else:
                self.code.append(ins.put_value(register, position))
            return
        if argument == NIL:
            self.code.append(ins.put_nil(position))
            return
        if isinstance(argument, (Atom, Int, Float)):
            self.code.append(ins.put_constant(argument, position))
            return
        assert isinstance(argument, Struct)
        child_registers = self._build_children(argument)
        if is_cons(argument):
            self.code.append(ins.put_list(xreg(position)))
        else:
            self.code.append(ins.put_structure(argument.indicator, xreg(position)))
        self._emit_write_unify_arguments(argument, child_registers)

    def _build_children(self, term: Struct) -> List[Optional[Reg]]:
        """Build compound subterms into temps, bottom-up; return their regs."""
        registers: List[Optional[Reg]] = []
        for argument in term.args:
            if isinstance(argument, Struct):
                registers.append(self._build_compound(argument))
            else:
                registers.append(None)
        return registers

    def _build_compound(self, term: Struct) -> Reg:
        child_registers = self._build_children(term)
        register = self._fresh_temp()
        if is_cons(term):
            self.code.append(ins.put_list(register))
        else:
            self.code.append(ins.put_structure(term.indicator, register))
        self._emit_write_unify_arguments(term, child_registers)
        return register

    def _emit_write_unify_arguments(
        self, term: Struct, child_registers: List[Optional[Reg]]
    ) -> None:
        for argument, child in zip(term.args, child_registers):
            if child is not None:
                self.code.append(ins.unify_value(child))
                continue
            if isinstance(argument, Var):
                if argument.name == "_":
                    self.code.append(ins.unify_void(1))
                    continue
                register = self._register_of(argument)
                if self._first_occurrence(argument):
                    self.code.append(ins.unify_variable(register))
                else:
                    self.code.append(ins.unify_value(register))
                continue
            if argument == NIL:
                self.code.append(ins.unify_nil())
            else:
                assert isinstance(argument, (Atom, Int, Float))
                self.code.append(ins.unify_constant(argument))

    # ------------------------------------------------------------------
    # The procedural skeleton.

    def emit_clause(self) -> List[Instr]:
        analysis = self.analysis
        clause = analysis.clause
        if analysis.needs_environment:
            self.code.append(ins.allocate(analysis.slot_count))
            if analysis.level_slot is not None:
                self.code.append(ins.get_level(yreg(analysis.level_slot)))
        self.emit_head(clause.head)

        body = clause.body
        kinds = analysis.kinds
        call_index = 0
        tail_call_emitted = False
        for position, (goal, kind) in enumerate(zip(body, kinds)):
            is_last = position == len(body) - 1
            if kind == "cut":
                if analysis.goal_chunks[position] == 0:
                    self.code.append(ins.neck_cut())
                else:
                    assert analysis.level_slot is not None
                    self.code.append(ins.cut(yreg(analysis.level_slot)))
                continue
            if kind == "builtin":
                self.emit_goal_arguments(goal)
                self.code.append(ins.builtin(indicator_of(goal)))
                continue
            # A user predicate call.
            self.emit_goal_arguments(goal)
            if is_last:
                if analysis.needs_environment:
                    self.code.append(ins.deallocate())
                self.code.append(ins.execute(indicator_of(goal)))
                tail_call_emitted = True
            else:
                live = 0
                if self.options.environment_trimming:
                    live = analysis.live_after_call[call_index]
                elif analysis.needs_environment:
                    live = analysis.slot_count
                self.code.append(ins.call(indicator_of(goal), live))
                call_index += 1
        if not tail_call_emitted:
            if analysis.needs_environment:
                self.code.append(ins.deallocate())
            self.code.append(ins.proceed())
        return self.code


def compile_clause(
    clause: Clause,
    options: Optional[CompilerOptions] = None,
    builtin_indicators=None,
) -> List[Instr]:
    """Compile one clause to an instruction list (no chain instructions)."""
    from ..builtins import MACHINE_BUILTIN_INDICATORS

    if builtin_indicators is None:
        builtin_indicators = MACHINE_BUILTIN_INDICATORS
    if options is None:
        options = CompilerOptions()
    analysis = analyze_clause(clause, builtin_indicators)
    emitter = ClauseEmitter(analysis, options, builtin_indicators)
    return emitter.emit_clause()
