"""Predicate-level code assembly: clause chains and first-argument indexing.

A multi-clause predicate compiles to a ``try_me_else`` / ``retry_me_else``
/ ``trust_me`` chain.  When every clause has a non-variable first argument
(and indexing is enabled), a ``switch_on_term`` dispatcher is placed in
front: constants go through ``switch_on_constant``, list cells to the list
bucket, structures through ``switch_on_structure``.  Buckets with a single
clause jump straight to the clause body (no choice point); larger buckets
use ``try``/``retry``/``trust`` sub-chains over clause-body labels.

The clause-body labels are also recorded in
:class:`~repro.wam.code.PredicateCode.clause_labels` — the abstract machine
enumerates clauses directly through them, as the paper prescribes
("creation and reclamation of backtracking points would better be
incorporated into instructions call and proceed").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ...prolog.program import Predicate
from ...prolog.terms import (
    Atom,
    Float,
    Int,
    Struct,
    Term,
    Var,
    is_cons,
)
from .. import instructions as ins
from ..code import PredicateCode
from ..instructions import Instr, Label
from .clause import CompilerOptions, compile_clause

#: Switch target meaning "no matching clause": the machine backtracks.
FAIL_TARGET = -1


def _first_argument_key(head: Term):
    """Dispatch key of a clause head: ``'var'``, ``('const', c)``,
    ``'list'`` or ``('struct', indicator)``."""
    if not isinstance(head, Struct):
        return "var"
    argument = head.args[0]
    if isinstance(argument, Var):
        return "var"
    if is_cons(argument):
        return "list"
    if isinstance(argument, (Atom, Int, Float)):
        return ("const", argument)
    assert isinstance(argument, Struct)
    return ("struct", argument.indicator)


class _PredicateAssembler:
    def __init__(
        self,
        predicate: Predicate,
        options: CompilerOptions,
        builtins,
        force_index: bool = False,
    ):
        self.predicate = predicate
        self.options = options
        self.builtins = builtins
        #: Optimizer mode: emit a switch even when some clauses have
        #: variable first-argument keys, merging those clauses into every
        #: bucket (in source order) and routing table misses and the
        #: on-variable case to chains that still try them.
        self.force_index = force_index
        self.code: List[Instr] = []
        self.clause_labels = [
            Label(f"c{i}") for i in range(len(predicate.clauses))
        ]
        self._label_counter = 0
        self._subchains: List[Tuple[Label, List[int]]] = []

    def _fresh_label(self, hint: str) -> Label:
        self._label_counter += 1
        return Label(f"{hint}{self._label_counter}")

    # ------------------------------------------------------------------

    def assemble(self) -> PredicateCode:
        clauses = self.predicate.clauses
        compiled = [
            compile_clause(clause, self.options, self.builtins)
            for clause in clauses
        ]
        if len(clauses) == 1:
            self.code.append(ins.label_marker(self.clause_labels[0]))
            self.code.extend(compiled[0])
            return self._finish()

        keys = [_first_argument_key(clause.head) for clause in clauses]
        use_switch = self.predicate.arity > 0 and (
            (self.options.indexing and all(key != "var" for key in keys))
            or (self.force_index and any(key != "var" for key in keys))
        )
        main_label = self._fresh_label("chain")
        if use_switch:
            self._emit_switch(keys, main_label)
        self.code.append(ins.label_marker(main_label))
        self._emit_main_chain(compiled)
        self._emit_subchains()
        return self._finish()

    def _finish(self) -> PredicateCode:
        return PredicateCode(
            indicator=self.predicate.indicator,
            instructions=self.code,
            clause_count=len(self.predicate.clauses),
            clause_labels=self.clause_labels,
        )

    # ------------------------------------------------------------------

    def _emit_main_chain(self, compiled: List[List[Instr]]) -> None:
        count = len(compiled)
        chain_labels = [self._fresh_label("t") for _ in range(count)]
        for index, clause_code in enumerate(compiled):
            if index == 0:
                self.code.append(ins.try_me_else(chain_labels[1]))
            elif index < count - 1:
                self.code.append(ins.label_marker(chain_labels[index]))
                self.code.append(ins.retry_me_else(chain_labels[index + 1]))
            else:
                self.code.append(ins.label_marker(chain_labels[index]))
                self.code.append(ins.trust_me())
            self.code.append(ins.label_marker(self.clause_labels[index]))
            self.code.extend(clause_code)

    # ------------------------------------------------------------------

    def _emit_switch(self, keys: List[object], main_label: Label) -> None:
        """First-argument dispatch.

        Variable-keyed clauses (possible only under ``force_index``) can
        match *any* runtime first argument, so they are merged into every
        bucket in source order, table misses fall back to the chain of
        just the variable-keyed clauses (``default`` operand), and the
        on-variable case runs the full main chain.  That makes the
        dispatch unconditionally semantics-preserving: each bucket holds
        exactly the clauses whose head could unify with the dispatched
        argument, in source order.
        """
        var_bucket = [i for i, key in enumerate(keys) if key == "var"]
        constant_buckets: Dict[object, List[int]] = {}
        structure_buckets: Dict[Tuple[str, int], List[int]] = {}
        for index, key in enumerate(keys):
            if isinstance(key, tuple) and key[0] == "const":
                constant_buckets.setdefault(key[1], [])
            elif isinstance(key, tuple) and key[0] == "struct":
                structure_buckets.setdefault(key[1], [])
        for index, key in enumerate(keys):
            for value, bucket in constant_buckets.items():
                if key == ("const", value) or key == "var":
                    bucket.append(index)
            for functor, bucket in structure_buckets.items():
                if key == ("struct", functor) or key == "var":
                    bucket.append(index)
        list_bucket = [
            i for i, key in enumerate(keys) if key in ("list", "var")
        ]

        var_target = self._bucket_target(var_bucket)
        tables: List[Tuple[Label, Instr]] = []

        def table_target(buckets: Dict, op: str) -> Union[Label, int]:
            if not buckets:
                return var_target
            table = {
                key: self._bucket_target(bucket)
                for key, bucket in buckets.items()
            }
            label = self._fresh_label("tbl")
            if op == "switch_on_constant":
                tables.append((label, ins.switch_on_constant(table, var_target)))
            else:
                tables.append((label, ins.switch_on_structure(table, var_target)))
            return label

        constant_target = table_target(constant_buckets, "switch_on_constant")
        if list_bucket == var_bucket:
            list_target = var_target
        else:
            list_target = self._bucket_target(list_bucket)
        structure_target = table_target(structure_buckets, "switch_on_structure")
        self.code.append(
            ins.switch_on_term(
                main_label, constant_target, list_target, structure_target
            )
        )
        for label, instruction in tables:
            self.code.append(ins.label_marker(label))
            self.code.append(instruction)

    def _bucket_target(self, bucket: List[int]) -> Union[Label, int]:
        if not bucket:
            return FAIL_TARGET
        if len(bucket) == 1:
            return self.clause_labels[bucket[0]]
        label = self._fresh_label("sub")
        self._subchains.append((label, bucket))
        return label

    def _emit_subchains(self) -> None:
        for label, bucket in self._subchains:
            self.code.append(ins.label_marker(label))
            self.code.append(ins.try_clause(self.clause_labels[bucket[0]]))
            for index in bucket[1:-1]:
                self.code.append(ins.retry_clause(self.clause_labels[index]))
            self.code.append(ins.trust_clause(self.clause_labels[bucket[-1]]))


def compile_predicate(
    predicate: Predicate,
    options: Optional[CompilerOptions] = None,
    builtin_indicators=None,
    force_index: bool = False,
) -> PredicateCode:
    """Compile all clauses of one predicate, chains and indexing included.

    ``force_index`` is the optimizer's entry point: emit first-argument
    dispatch even when some clauses carry variable keys (they merge into
    every bucket; see :meth:`_PredicateAssembler._emit_switch`).
    """
    from ..builtins import MACHINE_BUILTIN_INDICATORS

    if options is None:
        options = CompilerOptions()
    if builtin_indicators is None:
        builtin_indicators = MACHINE_BUILTIN_INDICATORS
    assembler = _PredicateAssembler(
        predicate, options, builtin_indicators, force_index=force_index
    )
    return assembler.assemble()
