"""Whole-program compilation and query compilation.

:func:`compile_program` compiles every predicate of a
:class:`~repro.prolog.program.Program` (after control-construct
normalization) and links the result into one
:class:`~repro.wam.code.CodeArea`.  The code area starts with two fixed
service instructions: address 0 holds ``halt`` (the initial continuation —
a ``proceed`` at the top level lands here and reports success), address
1 holds ``fail`` (the target of empty indexing buckets) and address 2 holds
a service ``proceed`` used by the abstract machine as the continuation of
``execute``.

Queries are compiled on demand as one-off predicates ``$query_<n>/K``
whose arguments are the query's distinct variables; the machine preloads
fresh heap variables into the argument registers and reads the answers
back from them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...errors import CompileError
from ...prolog.program import Clause, Predicate, Program, flatten_conjunction, normalize_program
from ...prolog.terms import (
    Atom,
    Indicator,
    Struct,
    Term,
    Var,
    term_vars,
)
from .. import instructions as ins
from ..code import CodeArea, PredicateCode
from .clause import CompilerOptions
from .predicate import compile_predicate

#: Fixed service addresses in every code area.
HALT_ADDRESS = 0
FAIL_ADDRESS = 1
#: A lone ``proceed``: the abstract machine's continuation for ``execute``
#: (which the paper reverts to ``call`` + ``proceed``).
PROCEED_ADDRESS = 2


@dataclass
class CompiledProgram:
    """A linked program: code area, entry table, and source association."""

    program: Program
    code: CodeArea
    options: CompilerOptions
    units: Dict[Indicator, PredicateCode] = field(default_factory=dict)
    _query_counter: "itertools.count" = field(default_factory=lambda: itertools.count(1))

    def clause_entries(self, indicator: Indicator) -> List[int]:
        """Clause body entry addresses, for direct clause enumeration."""
        return self.code.clause_entries.get(indicator, [])

    def size_of(self, indicator: Indicator) -> int:
        return self.code.size_of(indicator)

    def total_size(self) -> int:
        """Static code size excluding the service instructions."""
        return len(self.code) - 3

    def compile_query(self, goal: Term) -> Tuple[Indicator, List[Var]]:
        """Compile ``goal`` as a fresh ``$query_<n>/K`` predicate.

        Returns the new predicate's indicator and the list of distinct
        named variables (in first-occurrence order) that became its
        arguments.
        """
        variables = [
            v for v in term_vars(goal) if v.name and v.name != "_"
        ]
        name = f"$query_{next(self._query_counter)}"
        if variables:
            head: Term = Struct(name, tuple(variables))
        else:
            head = Atom(name)
        clause = Clause(head, flatten_conjunction(goal))
        predicate = Predicate((name, len(variables)), [clause])
        unit = compile_predicate(predicate, self.options)
        self.code.link([unit])
        self.units[unit.indicator] = unit
        return unit.indicator, variables


def compile_program(
    program: Program,
    options: Optional[CompilerOptions] = None,
    normalize: bool = True,
) -> CompiledProgram:
    """Compile and link every predicate of ``program``.

    ``normalize`` rewrites ``;``, ``->`` and ``\\+`` first; pass False only
    for programs known to be free of control constructs.
    """
    if options is None:
        options = CompilerOptions()
    if normalize:
        program = normalize_program(program)
    code = CodeArea()
    code.instructions.append(ins.halt_instr())
    code.instructions.append(ins.fail_instr())
    code.instructions.append(ins.proceed())
    from ..builtins import MACHINE_BUILTIN_INDICATORS

    compiled = CompiledProgram(program=program, code=code, options=options)
    units = []
    for predicate in program.predicates.values():
        if predicate.indicator in MACHINE_BUILTIN_INDICATORS:
            raise CompileError(
                f"cannot redefine builtin {predicate.indicator[0]}/"
                f"{predicate.indicator[1]}"
            )
        units.append(compile_predicate(predicate, options))
    code.link(units)
    for unit in units:
        compiled.units[unit.indicator] = unit
    return compiled
