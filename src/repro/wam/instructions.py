"""The WAM instruction set.

Instructions are uniform :class:`Instr` records (an opcode plus an operand
tuple) built through the typed factory functions below; the factories are
the documented surface, one per instruction, grouped exactly as in Warren's
report and in the paper (get, put, unify, procedural, indexing).

Registers are :class:`Reg` values: ``Reg('x', i)`` for temporary/argument
registers and ``Reg('y', i)`` for permanent (environment) slots.  Argument
registers ``Ai`` are simply ``X1..Xn``.

Design notes relative to the textbook machine:

* all variables are heap-allocated (``put_variable Yn, Ai`` creates a heap
  cell too), so ``put_unsafe_value`` and ``unify_local_value`` are not
  needed: last-call optimization is always safe;
* ``builtin`` invokes an inline builtin (arithmetic, comparison, type
  tests, ``=/2``, buffered output) on the argument registers;
* cut uses the ``B0`` register: ``neck_cut`` for a cut in the first body
  position, ``get_level Yn`` + ``cut Yn`` for deeper cuts.

Labels inside a predicate's code are symbolic :class:`Label` operands until
:mod:`repro.wam.code` resolves them to absolute addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from ..prolog.terms import Atom, Float, Indicator, Int, Term

Constant = Union[Atom, Int, Float]


@dataclass(frozen=True)
class Reg:
    """A machine register: ``kind`` is ``'x'`` or ``'y'``, index is 1-based."""

    kind: str
    index: int

    def __str__(self) -> str:
        return f"{self.kind.upper()}{self.index}"


def xreg(index: int) -> Reg:
    return Reg("x", index)


def yreg(index: int) -> Reg:
    return Reg("y", index)


@dataclass(frozen=True)
class Label:
    """A symbolic code label, unique within one compilation unit."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Instr:
    """One instruction: opcode plus operand tuple.

    Operands are registers, constants (AST terms), functor indicators,
    labels/addresses, or small integers, depending on the opcode.
    """

    op: str
    args: Tuple[object, ...] = ()

    def __str__(self) -> str:
        from .listing import format_instruction

        return format_instruction(self)


RegLike = Union[Reg, int]


def _as_reg(value: RegLike) -> Reg:
    """Accept an argument-register index or a :class:`Reg`."""
    if isinstance(value, Reg):
        return value
    return Reg("x", value)


# ----------------------------------------------------------------------
# put instructions (head-argument construction in the body).

def put_variable(register: Reg, argument: int) -> Instr:
    """Create a fresh variable in ``register`` and argument register Ai."""
    return Instr("put_variable", (register, argument))


def put_value(register: Reg, argument: int) -> Instr:
    return Instr("put_value", (register, argument))


def put_constant(constant: Constant, argument: int) -> Instr:
    return Instr("put_constant", (constant, argument))


def put_nil(argument: int) -> Instr:
    return Instr("put_nil", (argument,))


def put_list(target: RegLike) -> Instr:
    return Instr("put_list", (_as_reg(target),))


def put_structure(functor: Indicator, target: RegLike) -> Instr:
    return Instr("put_structure", (functor, _as_reg(target)))


# ----------------------------------------------------------------------
# get instructions (head-argument matching).

def get_variable(register: Reg, argument: int) -> Instr:
    return Instr("get_variable", (register, argument))


def get_value(register: Reg, argument: int) -> Instr:
    return Instr("get_value", (register, argument))


def get_constant(constant: Constant, argument: int) -> Instr:
    return Instr("get_constant", (constant, argument))


def get_nil(argument: int) -> Instr:
    return Instr("get_nil", (argument,))


def get_list(target: RegLike) -> Instr:
    return Instr("get_list", (_as_reg(target),))


def get_structure(functor: Indicator, target: RegLike) -> Instr:
    return Instr("get_structure", (functor, _as_reg(target)))


# ----------------------------------------------------------------------
# unify instructions (subterm matching/construction, read or write mode).

def unify_variable(register: Reg) -> Instr:
    return Instr("unify_variable", (register,))


def unify_value(register: Reg) -> Instr:
    return Instr("unify_value", (register,))


def unify_constant(constant: Constant) -> Instr:
    return Instr("unify_constant", (constant,))


def unify_nil() -> Instr:
    return Instr("unify_nil", ())


def unify_void(count: int) -> Instr:
    return Instr("unify_void", (count,))


# ----------------------------------------------------------------------
# procedural instructions.

def allocate(slot_count: int) -> Instr:
    return Instr("allocate", (slot_count,))


def deallocate() -> Instr:
    return Instr("deallocate", ())


def call(predicate: Indicator, live_slots: int = 0) -> Instr:
    """Call a user predicate; ``live_slots`` supports environment trimming."""
    return Instr("call", (predicate, live_slots))


def execute(predicate: Indicator) -> Instr:
    return Instr("execute", (predicate,))


def proceed() -> Instr:
    return Instr("proceed", ())


def builtin(predicate: Indicator) -> Instr:
    """Execute an inline builtin on the argument registers."""
    return Instr("builtin", (predicate,))


def neck_cut() -> Instr:
    return Instr("neck_cut", ())


def get_level(register: Reg) -> Instr:
    return Instr("get_level", (register,))


def cut(register: Reg) -> Instr:
    return Instr("cut", (register,))


def fail_instr() -> Instr:
    return Instr("fail", ())


def halt_instr() -> Instr:
    """Stop the machine with success (used by query stubs)."""
    return Instr("halt", ())


# ----------------------------------------------------------------------
# specialized instructions (repro.opt).
#
# The optimizer rewrites general get/unify instructions into these
# variants when the analysis proves a calling-pattern fact (paper §1's
# "substantial optimizations"):
#
# * ``*_nv`` — the examined argument is always instantiated (``nv`` or
#   ``ground``), so the unbound-REF branch and its binding/trailing are
#   compiled away (Taylor's dereference/trail removal);
# * ``get_*_w`` — the argument is always an unbound, unaliased variable,
#   so matching degenerates to construction: bind directly, no tag
#   dispatch (write-only specialization);
# * ``unify_*_r`` / ``unify_*_w`` — the read/write mode is statically
#   known (it follows a specialized ``get``), so the mode test goes away.
#
# Every specialized opcode maps to its general form in
# :data:`SPECIALIZED_BASE`; the verifier, listing and profiler treat a
# specialized instruction exactly like its base.

def get_constant_nv(constant: Constant, argument: int) -> Instr:
    return Instr("get_constant_nv", (constant, argument))


def get_nil_nv(argument: int) -> Instr:
    return Instr("get_nil_nv", (argument,))


def get_list_nv(target: RegLike) -> Instr:
    return Instr("get_list_nv", (_as_reg(target),))


def get_structure_nv(functor: Indicator, target: RegLike) -> Instr:
    return Instr("get_structure_nv", (functor, _as_reg(target)))


def get_constant_w(constant: Constant, argument: int) -> Instr:
    return Instr("get_constant_w", (constant, argument))


def get_nil_w(argument: int) -> Instr:
    return Instr("get_nil_w", (argument,))


def get_list_w(target: RegLike) -> Instr:
    return Instr("get_list_w", (_as_reg(target),))


def get_structure_w(functor: Indicator, target: RegLike) -> Instr:
    return Instr("get_structure_w", (functor, _as_reg(target)))


def unify_variable_r(register: Reg) -> Instr:
    return Instr("unify_variable_r", (register,))


def unify_value_r(register: Reg) -> Instr:
    return Instr("unify_value_r", (register,))


def unify_constant_r(constant: Constant) -> Instr:
    return Instr("unify_constant_r", (constant,))


def unify_nil_r() -> Instr:
    return Instr("unify_nil_r", ())


def unify_void_r(count: int) -> Instr:
    return Instr("unify_void_r", (count,))


def unify_variable_w(register: Reg) -> Instr:
    return Instr("unify_variable_w", (register,))


def unify_value_w(register: Reg) -> Instr:
    return Instr("unify_value_w", (register,))


def unify_constant_w(constant: Constant) -> Instr:
    return Instr("unify_constant_w", (constant,))


def unify_nil_w() -> Instr:
    return Instr("unify_nil_w", ())


def unify_void_w(count: int) -> Instr:
    return Instr("unify_void_w", (count,))


#: specialized opcode -> the general opcode it refines.
SPECIALIZED_BASE: Dict[str, str] = {
    "get_constant_nv": "get_constant",
    "get_nil_nv": "get_nil",
    "get_list_nv": "get_list",
    "get_structure_nv": "get_structure",
    "get_constant_w": "get_constant",
    "get_nil_w": "get_nil",
    "get_list_w": "get_list",
    "get_structure_w": "get_structure",
    "unify_variable_r": "unify_variable",
    "unify_value_r": "unify_value",
    "unify_constant_r": "unify_constant",
    "unify_nil_r": "unify_nil",
    "unify_void_r": "unify_void",
    "unify_variable_w": "unify_variable",
    "unify_value_w": "unify_value",
    "unify_constant_w": "unify_constant",
    "unify_nil_w": "unify_nil",
    "unify_void_w": "unify_void",
}

SPECIALIZED_OPS = frozenset(SPECIALIZED_BASE)


def base_op(op: str) -> str:
    """The general opcode behind ``op`` (identity for unspecialized ops)."""
    return SPECIALIZED_BASE.get(op, op)


# ----------------------------------------------------------------------
# indexing instructions.

Target = Union[Label, int]


def try_me_else(alternative: Target) -> Instr:
    return Instr("try_me_else", (alternative,))


def retry_me_else(alternative: Target) -> Instr:
    return Instr("retry_me_else", (alternative,))


def trust_me() -> Instr:
    return Instr("trust_me", ())


def try_clause(target: Target) -> Instr:
    return Instr("try", (target,))


def retry_clause(target: Target) -> Instr:
    return Instr("retry", (target,))


def trust_clause(target: Target) -> Instr:
    return Instr("trust", (target,))


def switch_on_term(
    on_variable: Target,
    on_constant: Target,
    on_list: Target,
    on_structure: Target,
) -> Instr:
    return Instr("switch_on_term", (on_variable, on_constant, on_list, on_structure))


def switch_on_constant(table: Dict[Constant, Target], default: Target = -1) -> Instr:
    """Dispatch on a constant key.  ``default`` is taken on a key miss —
    ``-1`` (fail) unless the optimizer routes misses to variable-keyed
    clauses.  The operand tuple stays one-element when the default is
    fail, so pre-optimizer code is unchanged."""
    entries = (tuple(sorted(table.items(), key=lambda kv: str(kv[0]))),)
    if default != -1:
        entries += (default,)
    return Instr("switch_on_constant", entries)


def switch_on_structure(table: Dict[Indicator, Target], default: Target = -1) -> Instr:
    """Dispatch on a functor key; see :func:`switch_on_constant`."""
    entries = (tuple(sorted(table.items(), key=lambda kv: str(kv[0]))),)
    if default != -1:
        entries += (default,)
    return Instr("switch_on_structure", entries)


def switch_default(instruction: Instr) -> Target:
    """The miss target of a switch-table instruction (``-1`` = fail)."""
    return instruction.args[1] if len(instruction.args) > 1 else -1


def label_marker(label: Label) -> Instr:
    """Pseudo-instruction marking a label position; removed at link time."""
    return Instr("label", (label,))


#: Opcode groups, mirroring the paper's classification.
GET_OPS = frozenset(
    ["get_variable", "get_value", "get_constant", "get_nil", "get_list", "get_structure"]
)
PUT_OPS = frozenset(
    ["put_variable", "put_value", "put_constant", "put_nil", "put_list", "put_structure"]
)
UNIFY_OPS = frozenset(
    ["unify_variable", "unify_value", "unify_constant", "unify_nil", "unify_void"]
)
PROCEDURAL_OPS = frozenset(
    [
        "allocate",
        "deallocate",
        "call",
        "execute",
        "proceed",
        "builtin",
        "neck_cut",
        "get_level",
        "cut",
        "fail",
        "halt",
    ]
)
INDEXING_OPS = frozenset(
    [
        "try_me_else",
        "retry_me_else",
        "trust_me",
        "try",
        "retry",
        "trust",
        "switch_on_term",
        "switch_on_constant",
        "switch_on_structure",
    ]
)
ALL_OPS = (
    GET_OPS | PUT_OPS | UNIFY_OPS | PROCEDURAL_OPS | INDEXING_OPS
    | SPECIALIZED_OPS | {"label"}
)
