"""Human-readable WAM code listings.

:func:`format_instruction` renders one instruction in the conventional
assembly style used by the paper (``get_structure f/1, X3``); with an
``arity`` hint, X registers at argument positions print as ``A1..An``
exactly like the paper's Figure 2.  :func:`disassemble` renders a linked
code area with addresses and predicate headers.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..prolog.terms import Atom, Float, Indicator, Int, format_indicator
from ..prolog.writer import term_to_text
from .code import CodeArea
from .instructions import Instr, Label, Reg, base_op


def _operand(value: object, arity: int = 0) -> str:
    if isinstance(value, Reg):
        if value.kind == "x" and 1 <= value.index <= arity:
            return f"A{value.index}"
        return str(value)
    if isinstance(value, Label):
        return str(value)
    if isinstance(value, (Atom, Int, Float)):
        return term_to_text(value, quoted=True)
    if isinstance(value, tuple) and len(value) == 2 and isinstance(value[0], str):
        # A functor indicator.
        return format_indicator(value)  # type: ignore[arg-type]
    return str(value)


def format_instruction(instruction: Instr, arity: int = 0) -> str:
    """Render one instruction; ``arity`` turns low X registers into An.

    Specialized opcodes (``get_list_nv``, ``unify_value_r``, ...) render
    with their own name but the operand layout of their base opcode.
    """
    op = instruction.op
    shape = base_op(op)
    args = instruction.args
    if shape in ("put_variable", "put_value", "get_variable", "get_value"):
        register, position = args
        return f"{op} {_operand(register, arity)}, A{position}"
    if shape in ("put_constant", "get_constant"):
        constant, position = args
        return f"{op} {_operand(constant)}, A{position}"
    if shape in ("put_nil", "get_nil"):
        return f"{op} A{args[0]}"
    if shape in ("put_list", "get_list"):
        return f"{op} {_operand(args[0], arity)}"
    if shape in ("put_structure", "get_structure"):
        functor, register = args
        return f"{op} {_operand(functor)}, {_operand(register, arity)}"
    if op in ("call",):
        predicate, live = args
        return f"call {format_indicator(predicate)}, {live}"
    if op in ("execute", "builtin"):
        return f"{op} {format_indicator(args[0])}"
    if op == "switch_on_term":
        targets = ", ".join(_operand(a) for a in args)
        return f"switch_on_term {targets}"
    if op in ("switch_on_constant", "switch_on_structure"):
        pairs = ", ".join(
            f"{_operand(key)}: {_operand(target)}" for key, target in args[0]
        )
        rendered = f"{op} {{{pairs}}}"
        if len(args) > 1:
            rendered += f" else {_operand(args[1])}"
        return rendered
    if not args:
        return op
    rendered = ", ".join(_operand(a, arity) for a in args)
    return f"{op} {rendered}"


def format_unit(
    instructions: Iterable[Instr], arity: int = 0, indent: str = "    "
) -> str:
    """Render an unlinked instruction list; labels outdent."""
    lines: List[str] = []
    for instruction in instructions:
        if instruction.op == "label":
            lines.append(f"{instruction.args[0]}:")
        else:
            lines.append(indent + format_instruction(instruction, arity))
    return "\n".join(lines)


def disassemble(
    code: CodeArea, indicator: Optional[Indicator] = None
) -> str:
    """Render a linked code area (or just one predicate) with addresses."""
    if indicator is not None:
        start = code.entry[indicator]
        size = code.size_of(indicator)
        addresses = range(start, start + size)
    else:
        addresses = range(len(code.instructions))
    lines: List[str] = []
    entries = {address: owner for address, owner in code.owners.items()}
    for address in addresses:
        owner = entries.get(address)
        if owner is not None:
            lines.append(f"{format_indicator(owner)}:")
        arity = 0
        predicate = code.predicate_at(address)
        if predicate is not None:
            arity = predicate[1]
        instruction = code.instructions[address]
        lines.append(f"{address:5d}  {format_instruction(instruction, arity)}")
    return "\n".join(lines)
