"""The concrete WAM: a standard Prolog engine executing linked code.

State registers follow Warren's design: ``P`` (program counter), ``CP``
(continuation), ``E`` (current environment), ``B`` (latest choice point),
``B0`` (cut barrier), ``S`` (subterm pointer) and ``mode`` (read/write),
plus the argument/temporary registers ``X``.

Differences from the textbook machine, chosen for clarity in Python:

* environments and choice points are Python objects rather than stack
  words; the heap is the only addressed store;
* every variable lives on the heap (``put_variable Yn`` also allocates a
  heap cell), which makes last-call optimization unconditionally safe;
* the trail is a value trail (address, old cell), shared machinery with
  the abstract machine, which must undo instantiation of non-ref cells.

Solutions are produced lazily: :meth:`Machine.run` compiles the query as a
one-off predicate, then yields one solution per successful derivation,
backtracking on demand.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import MachineError, PrologError
from ..prolog.terms import (
    NIL,
    Atom,
    Float,
    Indicator,
    Int,
    Struct,
    Term,
    Var,
    format_indicator,
)
from .cells import CON, FUN, LIS, REF, STR, Cell, Heap, cell_type
from .code import CodeArea
from .compile import CompiledProgram, HALT_ADDRESS
from .instructions import Instr, Reg


class Environment:
    """An environment frame: continuation and permanent variables."""

    __slots__ = ("prev", "cp", "slots")

    def __init__(self, prev: Optional["Environment"], cp: int, size: int):
        self.prev = prev
        self.cp = cp
        self.slots: List[object] = [None] * size


class ChoicePoint:
    """A backtracking frame."""

    __slots__ = (
        "prev",
        "args",
        "e",
        "cp",
        "b0",
        "next_alt",
        "trail_mark",
        "heap_mark",
        "num_args",
    )

    def __init__(
        self,
        prev: Optional["ChoicePoint"],
        args: Tuple[Cell, ...],
        e: Optional[Environment],
        cp: int,
        b0: Optional["ChoicePoint"],
        next_alt: int,
        trail_mark: int,
        heap_mark: int,
    ):
        self.prev = prev
        self.args = args
        self.e = e
        self.cp = cp
        self.b0 = b0
        self.next_alt = next_alt
        self.trail_mark = trail_mark
        self.heap_mark = heap_mark
        self.num_args = len(args)


class Machine:
    """Executes linked WAM code for one compiled program."""

    def __init__(self, compiled: CompiledProgram, max_steps: int = 50_000_000):
        from .builtins import MACHINE_BUILTINS

        self.compiled = compiled
        self.code: CodeArea = compiled.code
        self.heap = Heap()
        self.x: List[Cell] = [(CON, NIL)] * 8  # grows on demand; 1-based
        self.pc = HALT_ADDRESS
        self.cp = HALT_ADDRESS
        self.e: Optional[Environment] = None
        self.b: Optional[ChoicePoint] = None
        self.b0: Optional[ChoicePoint] = None
        self.s = 0
        self.mode = "read"
        self.num_args = 0
        self.max_steps = max_steps
        self.instruction_count = 0
        self.op_counts: Counter = Counter()
        #: Slots environment trimming would reclaim (see _trim_environment).
        self.trimmed_slots = 0
        self.output: List[str] = []
        self.builtins = MACHINE_BUILTINS
        self._switch_cache: Dict[int, Dict[object, int]] = {}
        #: Optional repro.wam.trace.Tracer recording executed instructions.
        self.tracer = None
        #: Optional zero-argument callable invoked once per dispatched
        #: instruction; the resource-governance layer (repro.robust)
        #: installs Budget.charge_step / FaultPlan firing here.  Left as
        #: None (no per-step overhead beyond one identity check) when the
        #: machine runs ungoverned.
        self.step_monitor = None
        #: Optional repro.obs.MetricsRegistry.  When set, the dispatch
        #: loop switches to _run_profiled, which counts instructions by
        #: opcode (and by owning predicate, see _profile_owner) and
        #: tracks the trail's peak depth.  When None — the default — the
        #: loop in _run_to_event runs with no extra work at all.
        self.metrics = None

    # ------------------------------------------------------------------
    # Register access.

    def get_x(self, index: int) -> Cell:
        return self.x[index]

    def set_x(self, index: int, cell: Cell) -> None:
        if index >= len(self.x):
            self.x.extend([(CON, NIL)] * (index + 1 - len(self.x)))
        self.x[index] = cell

    def get_reg(self, register: Reg) -> Cell:
        if register.kind == "x":
            return self.x[register.index]
        assert self.e is not None
        value = self.e.slots[register.index - 1]
        if value is None:
            raise MachineError(f"uninitialized permanent {register}")
        return value  # type: ignore[return-value]

    def set_reg(self, register: Reg, cell: Cell) -> None:
        if register.kind == "x":
            self.set_x(register.index, cell)
        else:
            assert self.e is not None
            self.e.slots[register.index - 1] = cell

    # ------------------------------------------------------------------
    # Binding and unification.

    def bind(self, address: int, cell: Cell) -> None:
        self.heap.set_cell(address, cell)

    def unify(self, left: Cell, right: Cell) -> bool:
        heap = self.heap
        stack: List[Tuple[Cell, Cell]] = [(left, right)]
        while stack:
            a, b = stack.pop()
            a = heap.deref(a)
            b = heap.deref(b)
            if a == b:
                continue
            if a[0] == REF and b[0] == REF:
                # Bind the younger variable to the older one.
                if a[1] < b[1]:  # type: ignore[operator]
                    self.bind(b[1], a)  # type: ignore[arg-type]
                else:
                    self.bind(a[1], b)  # type: ignore[arg-type]
                continue
            if a[0] == REF:
                self.bind(a[1], b)  # type: ignore[arg-type]
                continue
            if b[0] == REF:
                self.bind(b[1], a)  # type: ignore[arg-type]
                continue
            if a[0] == CON and b[0] == CON:
                if a[1] != b[1]:
                    return False
                continue
            if a[0] == LIS and b[0] == LIS:
                address_a, address_b = a[1], b[1]
                stack.append((heap.cells[address_a], heap.cells[address_b]))  # type: ignore[index]
                stack.append(
                    (heap.cells[address_a + 1], heap.cells[address_b + 1])  # type: ignore[index]
                )
                continue
            if a[0] == STR and b[0] == STR:
                functor_a = heap.cells[a[1]]  # type: ignore[index]
                functor_b = heap.cells[b[1]]  # type: ignore[index]
                if functor_a[1] != functor_b[1]:
                    return False
                arity = functor_a[1][1]  # type: ignore[index]
                for offset in range(1, arity + 1):
                    stack.append(
                        (heap.cells[a[1] + offset], heap.cells[b[1] + offset])  # type: ignore[index]
                    )
                continue
            return False
        return True

    # ------------------------------------------------------------------
    # Control.

    def backtrack(self) -> bool:
        """Restore the latest choice point; False when none remains."""
        frame = self.b
        if frame is None:
            return False
        for index, cell in enumerate(frame.args, start=1):
            self.set_x(index, cell)
        self.e = frame.e
        self.cp = frame.cp
        self.b0 = frame.b0
        self.num_args = frame.num_args
        self.heap.undo_to(frame.trail_mark, frame.heap_mark)
        self.pc = frame.next_alt
        return True

    def _push_choice_point(self, next_alt: int) -> None:
        self.b = ChoicePoint(
            prev=self.b,
            args=tuple(self.x[1 : self.num_args + 1]),
            e=self.e,
            cp=self.cp,
            b0=self.b0,
            next_alt=next_alt,
            trail_mark=self.heap.trail_mark(),
            heap_mark=self.heap.top,
        )

    # ------------------------------------------------------------------
    # The dispatch loop.

    def run(self, goal: Term) -> Iterator[Dict[str, Term]]:
        """Execute ``goal``; yields one name → term map per solution."""
        indicator, variables = self.compiled.compile_query(goal)
        cells = [self.heap.new_var() for _ in variables]
        for index, cell in enumerate(cells, start=1):
            self.set_x(index, cell)
        self.num_args = len(cells)
        self.pc = self.code.entry[indicator]
        self.cp = HALT_ADDRESS
        self.b0 = self.b
        alive = True
        while alive:
            status = self._run_to_event()
            if status == "fail":
                return
            assert status == "solution"
            names: Dict[int, Var] = {}
            yield {
                variable.name: self.heap.decode(cell, names)
                for variable, cell in zip(variables, cells)
                if variable.name
            }
            alive = self.backtrack()

    def run_once(self, goal: Term) -> Optional[Dict[str, Term]]:
        for solution in self.run(goal):
            return solution
        return None

    def _handlers(self):
        """Per-address bound handlers (rebuilt when the code area grows)."""
        cached = getattr(self, "_handler_cache", None)
        code = self.code.instructions
        if cached is None or len(cached) != len(code):
            dispatch = self.DISPATCH
            cached = []
            for instruction in code:
                handler = dispatch.get(instruction.op)
                if handler is None:
                    raise MachineError(f"unknown opcode {instruction.op}")
                cached.append(handler)
            self._handler_cache = cached
        return cached

    def _run_to_event(self) -> str:
        """Run until a solution (halt) or global failure."""
        if self.metrics is not None:
            return self._run_profiled()
        code = self.code.instructions
        handlers = self._handlers()
        count = self.instruction_count
        limit = self.max_steps
        tracer = self.tracer
        monitor = self.step_monitor
        while True:
            count += 1
            if count > limit:
                self.instruction_count = count
                raise PrologError("resource_error", "WAM step limit exceeded")
            if monitor is not None:
                try:
                    monitor()
                except BaseException:
                    self.instruction_count = count
                    raise
            pc = self.pc
            if tracer is not None:
                self.instruction_count = count
                tracer.record(self, code[pc])
            outcome = handlers[pc](self, code[pc])
            if outcome is None:
                continue
            if outcome == "halt":
                self.instruction_count = count
                return "solution"
            assert outcome == "fail"
            if not self.backtrack():
                self.instruction_count = count
                return "fail"

    # ------------------------------------------------------------------
    # Profiled dispatch (repro.obs).

    def _profile_owner(self):
        """Who the next instruction is charged to in the profile.

        The concrete machine has no per-predicate attribution (there is
        no exploration stack to consult); the abstract machine overrides
        this with the innermost open exploration frame's indicator.
        """
        return None

    def _run_profiled(self) -> str:
        """The dispatch loop of _run_to_event plus metric accounting.

        A separate method so that metrics-off runs execute the original
        loop verbatim.  Per-instruction counts accumulate in local dicts
        and are flushed to the registry exactly once, in the ``finally``
        block — including on step-limit or budget aborts, so a degraded
        run still reports what it executed.
        """
        code = self.code.instructions
        handlers = self._handlers()
        count = self.instruction_count
        limit = self.max_steps
        tracer = self.tracer
        monitor = self.step_monitor
        trail = self.heap.trail
        op_counts: Dict[str, int] = {}
        owner_counts: Dict[object, int] = {}
        trail_peak = len(trail)
        try:
            while True:
                count += 1
                if count > limit:
                    self.instruction_count = count
                    raise PrologError(
                        "resource_error", "WAM step limit exceeded"
                    )
                if monitor is not None:
                    try:
                        monitor()
                    except BaseException:
                        self.instruction_count = count
                        raise
                pc = self.pc
                instruction = code[pc]
                op = instruction.op
                op_counts[op] = op_counts.get(op, 0) + 1
                owner = self._profile_owner()
                if owner is not None:
                    owner_counts[owner] = owner_counts.get(owner, 0) + 1
                if tracer is not None:
                    self.instruction_count = count
                    tracer.record(self, instruction)
                outcome = handlers[pc](self, instruction)
                if len(trail) > trail_peak:
                    trail_peak = len(trail)
                if outcome is None:
                    continue
                if outcome == "halt":
                    self.instruction_count = count
                    return "solution"
                assert outcome == "fail"
                if not self.backtrack():
                    self.instruction_count = count
                    return "fail"
        finally:
            self.instruction_count = count
            self._flush_profile(op_counts, owner_counts, trail_peak)

    def _flush_profile(
        self,
        op_counts: Dict[str, int],
        owner_counts: Dict[object, int],
        trail_peak: int,
    ) -> None:
        from ..obs.metrics import opcode_class

        metrics = self.metrics
        if metrics is None:  # pragma: no cover - cleared mid-run
            return
        total = 0
        for op, value in op_counts.items():
            total += value
            metrics.counter("wam.instructions.op", op=op).inc(value)
            metrics.counter(
                "wam.instructions.class", **{"class": opcode_class(op)}
            ).inc(value)
        if total:
            metrics.counter("wam.instructions").inc(total)
        for owner, value in owner_counts.items():
            metrics.counter(
                "analysis.predicate.instructions",
                pred=format_indicator(owner),
            ).inc(value)
        metrics.gauge("wam.trail.peak").set_max(trail_peak)

    # ------------------------------------------------------------------
    # put instructions.

    def _put_variable(self, instruction: Instr):
        register, position = instruction.args
        cell = self.heap.new_var()
        self.set_reg(register, cell)
        self.set_x(position, cell)
        self.pc += 1

    def _put_value(self, instruction: Instr):
        register, position = instruction.args
        self.set_x(position, self.get_reg(register))
        self.pc += 1

    def _put_constant(self, instruction: Instr):
        constant, position = instruction.args
        self.set_x(position, (CON, constant))
        self.pc += 1

    def _put_nil(self, instruction: Instr):
        self.set_x(instruction.args[0], (CON, NIL))
        self.pc += 1

    def _put_list(self, instruction: Instr):
        register = instruction.args[0]
        self.set_reg(register, (LIS, self.heap.top))
        self.mode = "write"
        self.pc += 1

    def _put_structure(self, instruction: Instr):
        functor, register = instruction.args
        address = self.heap.push((FUN, functor))
        self.set_reg(register, (STR, address))
        self.mode = "write"
        self.pc += 1

    # ------------------------------------------------------------------
    # get instructions.

    def _get_variable(self, instruction: Instr):
        register, position = instruction.args
        self.set_reg(register, self.get_x(position))
        self.pc += 1

    def _get_value(self, instruction: Instr):
        register, position = instruction.args
        if not self.unify(self.get_reg(register), self.get_x(position)):
            return "fail"
        self.pc += 1

    def _get_constant_cell(self, constant, cell: Cell):
        cell = self.heap.deref(cell)
        if cell[0] == REF:
            self.bind(cell[1], (CON, constant))  # type: ignore[arg-type]
            return None
        if cell[0] == CON and cell[1] == constant:
            return None
        return "fail"

    def _get_constant(self, instruction: Instr):
        constant, position = instruction.args
        outcome = self._get_constant_cell(constant, self.get_x(position))
        if outcome is not None:
            return outcome
        self.pc += 1

    def _get_nil(self, instruction: Instr):
        outcome = self._get_constant_cell(NIL, self.get_x(instruction.args[0]))
        if outcome is not None:
            return outcome
        self.pc += 1

    def _get_list(self, instruction: Instr):
        register = instruction.args[0]
        cell = self.heap.deref(self.get_reg(register))
        if cell[0] == REF:
            self.bind(cell[1], (LIS, self.heap.top))  # type: ignore[arg-type]
            self.mode = "write"
        elif cell[0] == LIS:
            self.s = cell[1]  # type: ignore[assignment]
            self.mode = "read"
        else:
            return "fail"
        self.pc += 1

    def _get_structure(self, instruction: Instr):
        functor, register = instruction.args
        cell = self.heap.deref(self.get_reg(register))
        if cell[0] == REF:
            address = self.heap.push((FUN, functor))
            self.bind(cell[1], (STR, address))  # type: ignore[arg-type]
            self.mode = "write"
        elif cell[0] == STR:
            functor_cell = self.heap.cells[cell[1]]  # type: ignore[index]
            if functor_cell[1] != functor:
                return "fail"
            self.s = cell[1] + 1  # type: ignore[assignment]
            self.mode = "read"
        else:
            return "fail"
        self.pc += 1

    # ------------------------------------------------------------------
    # specialized get instructions (repro.opt).
    #
    # The ``_nv`` variants trust the analysis fact "this argument is
    # always instantiated": the unbound-REF branch is gone, so a
    # non-matching tag simply fails.  The ``_w`` variants trust "this
    # argument is always an unbound, unaliased variable": they bind
    # without any tag dispatch.  Translation validation (repro.opt.validate)
    # checks the facts end to end before optimized code is trusted.

    def _get_constant_nv(self, instruction: Instr):
        constant, position = instruction.args
        cell = self.heap.deref(self.get_x(position))
        if cell[0] == CON and cell[1] == constant:
            self.pc += 1
            return None
        return "fail"

    def _get_nil_nv(self, instruction: Instr):
        cell = self.heap.deref(self.get_x(instruction.args[0]))
        if cell[0] == CON and cell[1] == NIL:
            self.pc += 1
            return None
        return "fail"

    def _get_list_nv(self, instruction: Instr):
        cell = self.heap.deref(self.get_reg(instruction.args[0]))
        if cell[0] != LIS:
            return "fail"
        self.s = cell[1]  # type: ignore[assignment]
        self.mode = "read"
        self.pc += 1

    def _get_structure_nv(self, instruction: Instr):
        functor, register = instruction.args
        cell = self.heap.deref(self.get_reg(register))
        if cell[0] != STR:
            return "fail"
        if self.heap.cells[cell[1]][1] != functor:  # type: ignore[index]
            return "fail"
        self.s = cell[1] + 1  # type: ignore[assignment]
        self.mode = "read"
        self.pc += 1

    def _get_constant_w(self, instruction: Instr):
        constant, position = instruction.args
        cell = self.heap.deref(self.get_x(position))
        self.bind(cell[1], (CON, constant))  # type: ignore[arg-type]
        self.pc += 1

    def _get_nil_w(self, instruction: Instr):
        cell = self.heap.deref(self.get_x(instruction.args[0]))
        self.bind(cell[1], (CON, NIL))  # type: ignore[arg-type]
        self.pc += 1

    def _get_list_w(self, instruction: Instr):
        cell = self.heap.deref(self.get_reg(instruction.args[0]))
        self.bind(cell[1], (LIS, self.heap.top))  # type: ignore[arg-type]
        self.mode = "write"
        self.pc += 1

    def _get_structure_w(self, instruction: Instr):
        functor, register = instruction.args
        cell = self.heap.deref(self.get_reg(register))
        address = self.heap.push((FUN, functor))
        self.bind(cell[1], (STR, address))  # type: ignore[arg-type]
        self.mode = "write"
        self.pc += 1

    # ------------------------------------------------------------------
    # unify instructions.

    def _unify_variable(self, instruction: Instr):
        register = instruction.args[0]
        if self.mode == "read":
            self.set_reg(register, self.heap.cells[self.s])
            self.s += 1
        else:
            self.set_reg(register, self.heap.new_var())
        self.pc += 1

    def _unify_value(self, instruction: Instr):
        register = instruction.args[0]
        if self.mode == "read":
            if not self.unify(self.get_reg(register), self.heap.cells[self.s]):
                return "fail"
            self.s += 1
        else:
            self.heap.push(self.get_reg(register))
        self.pc += 1

    def _unify_constant(self, instruction: Instr):
        constant = instruction.args[0]
        if self.mode == "read":
            outcome = self._get_constant_cell(constant, self.heap.cells[self.s])
            if outcome is not None:
                return outcome
            self.s += 1
        else:
            self.heap.push((CON, constant))
        self.pc += 1

    def _unify_nil(self, instruction: Instr):
        if self.mode == "read":
            outcome = self._get_constant_cell(NIL, self.heap.cells[self.s])
            if outcome is not None:
                return outcome
            self.s += 1
        else:
            self.heap.push((CON, NIL))
        self.pc += 1

    def _unify_void(self, instruction: Instr):
        count = instruction.args[0]
        if self.mode == "read":
            self.s += count
        else:
            for _ in range(count):
                self.heap.new_var()
        self.pc += 1

    # ------------------------------------------------------------------
    # mode-specialized unify instructions (repro.opt): the read/write
    # mode is statically known after a specialized get, so the mode test
    # disappears.

    def _unify_variable_r(self, instruction: Instr):
        self.set_reg(instruction.args[0], self.heap.cells[self.s])
        self.s += 1
        self.pc += 1

    def _unify_value_r(self, instruction: Instr):
        if not self.unify(
            self.get_reg(instruction.args[0]), self.heap.cells[self.s]
        ):
            return "fail"
        self.s += 1
        self.pc += 1

    def _unify_constant_r(self, instruction: Instr):
        outcome = self._get_constant_cell(
            instruction.args[0], self.heap.cells[self.s]
        )
        if outcome is not None:
            return outcome
        self.s += 1
        self.pc += 1

    def _unify_nil_r(self, instruction: Instr):
        outcome = self._get_constant_cell(NIL, self.heap.cells[self.s])
        if outcome is not None:
            return outcome
        self.s += 1
        self.pc += 1

    def _unify_void_r(self, instruction: Instr):
        self.s += instruction.args[0]
        self.pc += 1

    def _unify_variable_w(self, instruction: Instr):
        self.set_reg(instruction.args[0], self.heap.new_var())
        self.pc += 1

    def _unify_value_w(self, instruction: Instr):
        self.heap.push(self.get_reg(instruction.args[0]))
        self.pc += 1

    def _unify_constant_w(self, instruction: Instr):
        self.heap.push((CON, instruction.args[0]))
        self.pc += 1

    def _unify_nil_w(self, instruction: Instr):
        self.heap.push((CON, NIL))
        self.pc += 1

    def _unify_void_w(self, instruction: Instr):
        for _ in range(instruction.args[0]):
            self.heap.new_var()
        self.pc += 1

    # ------------------------------------------------------------------
    # procedural instructions.

    def _allocate(self, instruction: Instr):
        self.e = Environment(self.e, self.cp, instruction.args[0])
        self.pc += 1

    def _deallocate(self, instruction: Instr):
        assert self.e is not None
        self.cp = self.e.cp
        self.e = self.e.prev
        self.pc += 1

    def _trim_environment(self, live: int) -> None:
        """Account for environment trimming.

        In the real WAM trimming reclaims stack space because later
        allocations overwrite the dead slots; the slots themselves stay
        intact whenever a younger choice point protects them, so a
        destructive truncation here would be wrong (backtracking must be
        able to re-read them).  With heap-allocated environment objects
        there is no stack to reclaim, so we record the reclaimable-slot
        count — the quantity the ablation benchmark reports.
        """
        if self.e is not None and self.compiled.options.environment_trimming:
            self.trimmed_slots += max(0, len(self.e.slots) - live)

    def _call(self, instruction: Instr):
        predicate, live = instruction.args
        self._trim_environment(live)
        entry = self.code.entry.get(predicate)
        if entry is None:
            raise PrologError(
                "existence_error",
                f"unknown predicate {format_indicator(predicate)}",
            )
        self.cp = self.pc + 1
        self.num_args = predicate[1]
        self.b0 = self.b
        self.pc = entry

    def _execute(self, instruction: Instr):
        predicate = instruction.args[0]
        entry = self.code.entry.get(predicate)
        if entry is None:
            raise PrologError(
                "existence_error",
                f"unknown predicate {format_indicator(predicate)}",
            )
        self.num_args = predicate[1]
        self.b0 = self.b
        self.pc = entry

    def _proceed(self, instruction: Instr):
        self.pc = self.cp

    def _builtin(self, instruction: Instr):
        predicate = instruction.args[0]
        handler = self.builtins.get(predicate)
        if handler is None:
            raise PrologError(
                "existence_error",
                f"builtin {format_indicator(predicate)} not supported by the WAM",
            )
        if not handler(self):
            return "fail"
        self.pc += 1

    def _neck_cut(self, instruction: Instr):
        self.b = self.b0
        self.pc += 1

    def _get_level(self, instruction: Instr):
        register = instruction.args[0]
        assert self.e is not None
        self.e.slots[register.index - 1] = ("lvl", self.b0)
        self.pc += 1

    def _cut(self, instruction: Instr):
        register = instruction.args[0]
        assert self.e is not None
        saved = self.e.slots[register.index - 1]
        if not (isinstance(saved, tuple) and saved[0] == "lvl"):
            raise MachineError("cut level slot corrupted")
        self.b = saved[1]
        self.pc += 1

    def _fail(self, instruction: Instr):
        return "fail"

    def _halt(self, instruction: Instr):
        return "halt"

    # ------------------------------------------------------------------
    # indexing instructions.

    def _try_me_else(self, instruction: Instr):
        self._push_choice_point(instruction.args[0])
        self.pc += 1

    def _retry_me_else(self, instruction: Instr):
        assert self.b is not None
        self.b.next_alt = instruction.args[0]
        self.pc += 1

    def _trust_me(self, instruction: Instr):
        assert self.b is not None
        self.b = self.b.prev
        self.pc += 1

    def _try(self, instruction: Instr):
        self._push_choice_point(self.pc + 1)
        self.pc = instruction.args[0]

    def _retry(self, instruction: Instr):
        assert self.b is not None
        self.b.next_alt = self.pc + 1
        self.pc = instruction.args[0]

    def _trust(self, instruction: Instr):
        assert self.b is not None
        self.b = self.b.prev
        self.pc = instruction.args[0]

    def _switch_on_term(self, instruction: Instr):
        on_var, on_const, on_list, on_struct = instruction.args
        kind = cell_type(self.heap.deref(self.get_x(1)))
        target = {
            "var": on_var,
            "const": on_const,
            "list": on_list,
            "struct": on_struct,
        }[kind]
        if target == -1:
            return "fail"
        self.pc = target

    def _switch_table(self, instruction: Instr, key) -> object:
        table = self._switch_cache.get(id(instruction))
        if table is None:
            table = dict(instruction.args[0])
            self._switch_cache[id(instruction)] = table
        if len(instruction.args) > 1:
            # Optimizer-emitted switch: misses fall back to the
            # variable-keyed clause chain instead of failing.
            target = table.get(key, instruction.args[1])
        else:
            target = table.get(key, -1)
        if target == -1:
            return "fail"
        self.pc = target
        return None

    def _switch_on_constant(self, instruction: Instr):
        cell = self.heap.deref(self.get_x(1))
        if cell[0] != CON:
            raise MachineError("switch_on_constant on non-constant")
        return self._switch_table(instruction, cell[1])

    def _switch_on_structure(self, instruction: Instr):
        cell = self.heap.deref(self.get_x(1))
        if cell[0] == LIS:
            key = (".", 2)
        elif cell[0] == STR:
            key = self.heap.cells[cell[1]][1]  # type: ignore[index]
        else:
            raise MachineError("switch_on_structure on non-structure")
        return self._switch_table(instruction, key)


Machine.DISPATCH = {
    "put_variable": Machine._put_variable,
    "put_value": Machine._put_value,
    "put_constant": Machine._put_constant,
    "put_nil": Machine._put_nil,
    "put_list": Machine._put_list,
    "put_structure": Machine._put_structure,
    "get_variable": Machine._get_variable,
    "get_value": Machine._get_value,
    "get_constant": Machine._get_constant,
    "get_nil": Machine._get_nil,
    "get_list": Machine._get_list,
    "get_structure": Machine._get_structure,
    "unify_variable": Machine._unify_variable,
    "unify_value": Machine._unify_value,
    "unify_constant": Machine._unify_constant,
    "unify_nil": Machine._unify_nil,
    "unify_void": Machine._unify_void,
    "allocate": Machine._allocate,
    "deallocate": Machine._deallocate,
    "call": Machine._call,
    "execute": Machine._execute,
    "proceed": Machine._proceed,
    "builtin": Machine._builtin,
    "neck_cut": Machine._neck_cut,
    "get_level": Machine._get_level,
    "cut": Machine._cut,
    "fail": Machine._fail,
    "halt": Machine._halt,
    "try_me_else": Machine._try_me_else,
    "retry_me_else": Machine._retry_me_else,
    "trust_me": Machine._trust_me,
    "try": Machine._try,
    "retry": Machine._retry,
    "trust": Machine._trust,
    "switch_on_term": Machine._switch_on_term,
    "switch_on_constant": Machine._switch_on_constant,
    "switch_on_structure": Machine._switch_on_structure,
    "get_constant_nv": Machine._get_constant_nv,
    "get_nil_nv": Machine._get_nil_nv,
    "get_list_nv": Machine._get_list_nv,
    "get_structure_nv": Machine._get_structure_nv,
    "get_constant_w": Machine._get_constant_w,
    "get_nil_w": Machine._get_nil_w,
    "get_list_w": Machine._get_list_w,
    "get_structure_w": Machine._get_structure_w,
    "unify_variable_r": Machine._unify_variable_r,
    "unify_value_r": Machine._unify_value_r,
    "unify_constant_r": Machine._unify_constant_r,
    "unify_nil_r": Machine._unify_nil_r,
    "unify_void_r": Machine._unify_void_r,
    "unify_variable_w": Machine._unify_variable_w,
    "unify_value_w": Machine._unify_value_w,
    "unify_constant_w": Machine._unify_constant_w,
    "unify_nil_w": Machine._unify_nil_w,
    "unify_void_w": Machine._unify_void_w,
}
