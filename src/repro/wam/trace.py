"""Instruction-level execution tracing for the WAMs.

Attach a :class:`Tracer` to a machine (``machine.tracer = Tracer()``) and
every dispatched instruction is recorded; the abstract machine
additionally reports extension-table events (calling-pattern computation,
memo hits, ``updateET``, the ``lookupET`` return), which yields annotated
traces in the style of the paper's Figure 3.

Tracing is off by default and costs one attribute check per instruction
when enabled elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .instructions import Instr
from .listing import format_instruction


@dataclass
class TraceLine:
    """One trace record: an instruction or an annotated event."""

    kind: str  # 'instr' or 'event'
    address: int
    text: str
    note: str = ""

    def render(self) -> str:
        if self.kind == "event":
            return f"        %% {self.text}"
        line = f"{self.address:5d}  {self.text}"
        if self.note:
            line = f"{line:50s} % {self.note}"
        return line


@dataclass
class Tracer:
    """Collects execution records up to a limit."""

    limit: int = 10_000
    lines: List[TraceLine] = field(default_factory=list)
    truncated: bool = False

    def record(self, machine, instruction: Instr) -> None:
        if len(self.lines) >= self.limit:
            self.truncated = True
            return
        arity = machine.num_args
        self.lines.append(
            TraceLine(
                "instr",
                machine.pc,
                format_instruction(instruction, arity=arity),
            )
        )

    def event(self, text: str) -> None:
        if len(self.lines) >= self.limit:
            self.truncated = True
            return
        self.lines.append(TraceLine("event", -1, text))

    def annotate_last(self, note: str) -> None:
        """Attach a note to the most recent instruction line."""
        for line in reversed(self.lines):
            if line.kind == "instr":
                line.note = note
                return

    def to_text(self) -> str:
        rendered = [line.render() for line in self.lines]
        if self.truncated:
            rendered.append("        %% ... trace truncated ...")
        return "\n".join(rendered)

    def instruction_count(self) -> int:
        return sum(1 for line in self.lines if line.kind == "instr")
