"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.prolog import Program, Solver, parse_term, term_to_text
from repro.wam import Machine, compile_program


def solve_texts(program_text: str, goal_text: str, limit: int = 50):
    """All solver solutions as {name: text} dicts."""
    solver = Solver(Program.from_text(program_text))
    results = []
    for solution in solver.solve(parse_term(goal_text)):
        results.append({k: term_to_text(v) for k, v in solution.items()})
        if len(results) >= limit:
            break
    return results


def wam_texts(program_text: str, goal_text: str, limit: int = 50, options=None):
    """All WAM solutions as {name: text} dicts."""
    machine = Machine(compile_program(Program.from_text(program_text), options))
    results = []
    for solution in machine.run(parse_term(goal_text)):
        results.append({k: term_to_text(v) for k, v in solution.items()})
        if len(results) >= limit:
            break
    return results


APPEND_NREV = """
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
"""


@pytest.fixture
def append_nrev() -> str:
    return APPEND_NREV
