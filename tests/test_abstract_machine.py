"""Tests for the abstract WAM: reinterpreted instructions and analysis runs."""

import pytest

from repro.analysis import AbstractMachine, analyze
from repro.domain import AbsSort, tree_to_text
from repro.errors import PrologError
from repro.prolog import Program
from repro.wam import compile_program

S = AbsSort


def success_types(result, name, arity):
    return [
        tree_to_text(t) if t is not None else "fail"
        for t in result.success_types((name, arity))
    ]


def call_types(result, name, arity):
    return [tree_to_text(t) for t in result.call_types((name, arity))]


class TestSimplePredicates:
    def test_fact_types(self):
        result = analyze("p(a).", "p(var)")
        assert success_types(result, "p", 1) == ["atom"]

    def test_multiple_facts_lub(self):
        result = analyze("p(a). p(1).", "p(var)")
        assert success_types(result, "p", 1) == ["const"]

    def test_failing_predicate(self):
        result = analyze("p(a).", "p(int)")
        info = result.predicate(("p", 1))
        assert not info.can_succeed

    def test_structure_type(self):
        result = analyze("p(f(1, a)).", "p(var)")
        assert success_types(result, "p", 1) == ["f(int, atom)"]

    def test_ground_input_stays_ground(self):
        result = analyze("p(X).", "p(g)")
        assert success_types(result, "p", 1) == ["g"]

    def test_list_input(self):
        # The success abstraction re-summarizes the grown cons cell into
        # the list type (the spine walk sees [g | g-list]).
        result = analyze("first([H|_], H).", "first(glist, var)")
        assert success_types(result, "first", 2) == ["g-list", "g"]


class TestModes:
    def test_in_out_modes(self):
        result = analyze(
            "len([], 0). len([_|T], N) :- len(T, M), N is M + 1.",
            "len(glist, var)",
        )
        assert result.modes(("len", 2)) == ["+g", "-"]

    def test_any_mode(self):
        result = analyze("p(X).", "p(any)")
        assert result.modes(("p", 1)) == ["?"]

    def test_nonvar_mode(self):
        result = analyze("p(f(X)).", "p(nv)")
        assert result.modes(("p", 1)) == ["+"]


class TestRecursionAndFixpoint:
    def test_append(self, append_nrev):
        result = analyze(append_nrev, "app(glist, glist, var)")
        assert success_types(result, "app", 3) == ["g-list", "g-list", "g-list"]

    def test_nrev_converges(self, append_nrev):
        result = analyze(append_nrev, "nrev(glist, var)")
        assert result.iterations <= 4
        assert success_types(result, "nrev", 2) == ["g-list", "g-list"]

    def test_left_recursive_terminates(self):
        # Subsumption through the table prevents divergence.
        result = analyze("p(X) :- p(X). p(a).", "p(var)")
        assert success_types(result, "p", 1) == ["atom"]

    def test_mutual_recursion(self):
        text = """
        even(0).
        even(N) :- N > 0, M is N - 1, odd(M).
        odd(N) :- N > 0, M is N - 1, even(M).
        """
        result = analyze(text, "even(int)")
        assert success_types(result, "even", 1) == ["int"]
        assert success_types(result, "odd", 1) == ["int"]

    def test_growing_structure_bounded_by_depth(self):
        # s(s(s(...))) towers are cut off by the term-depth restriction.
        text = "grow(X, s(X)). chain(X, Z) :- grow(X, Y), chain(Y, Z). chain(X, X)."
        result = analyze(text, "chain(atom, var)", depth=3)
        assert result.iterations < 30

    def test_arithmetic_counter(self):
        text = "count(0). count(N) :- N > 0, M is N - 1, count(M)."
        result = analyze(text, "count(int)")
        assert success_types(result, "count", 1) == ["int"]


class TestAliasing:
    def test_equal_args_alias_in_success(self):
        result = analyze("eq(X, X).", "eq(var, var)")
        info = result.predicate(("eq", 2))
        assert (0, 1) in info.success_aliasing

    def test_aliased_call_pattern(self):
        result = analyze("p(X, Y). main :- q(Z, Z). q(A, B) :- p(A, B).", "main")
        info = result.predicate(("q", 2))
        assert (0, 1) in info.call_aliasing

    def test_aliasing_propagates_bindings(self):
        # After eq(X, Y), binding X must be reflected in Y's success type.
        text = "main(Y) :- eq(X, Y), X = 3. eq(A, A)."
        result = analyze(text, "main(var)")
        assert success_types(result, "main", 1) == ["int"]


class TestBuiltinsAbstract:
    def test_is_gives_integer(self):
        result = analyze("f(X, Y) :- Y is X + 1.", "f(int, var)")
        assert success_types(result, "f", 2) == ["int", "int"]

    def test_comparison_no_bindings(self):
        result = analyze("f(X) :- X > 0.", "f(int)")
        assert success_types(result, "f", 1) == ["int"]

    def test_comparison_on_definite_var_fails(self):
        result = analyze("f(X, Y) :- X > Y.", "f(var, var)")
        assert not result.predicate(("f", 2)).can_succeed

    def test_type_test_prunes(self):
        result = analyze("f(X) :- atom(X).", "f(int)")
        assert not result.predicate(("f", 1)).can_succeed

    def test_type_test_passes_when_possible(self):
        result = analyze("f(X) :- atom(X).", "f(const)")
        assert result.predicate(("f", 1)).can_succeed

    def test_unify_builtin(self):
        result = analyze("f(X) :- X = g(1).", "f(var)")
        assert success_types(result, "f", 1) == ["g(int)"]

    def test_var_test(self):
        result = analyze("f(X) :- var(X).", "f(g)")
        assert not result.predicate(("f", 1)).can_succeed

    def test_univ(self):
        result = analyze("f(L) :- foo(1) =.. L.", "f(var)")
        assert success_types(result, "f", 1) == ["any-list"]


class TestCutSoundness:
    def test_all_clauses_explored(self):
        # Cut is a no-op abstractly: both clauses contribute.
        text = "p(X, a) :- X >= 0, !. p(_, 1)."
        result = analyze(text, "p(int, var)")
        assert success_types(result, "p", 2) == ["int", "const"]


class TestExecCountsAndErrors:
    def test_instruction_count_positive(self, append_nrev):
        result = analyze(append_nrev, "nrev(glist, var)")
        assert result.instructions_executed > 0

    def test_unknown_predicate(self):
        with pytest.raises(PrologError):
            analyze("p :- missing.", "p")

    def test_machine_reaches_table_fixpoint(self, append_nrev):
        compiled = compile_program(Program.from_text(append_nrev))
        machine = AbstractMachine(compiled)
        from repro.analysis.driver import parse_entry_spec

        spec = parse_entry_spec("nrev(glist, var)")
        previous = -1
        for _ in range(10):
            before = machine.table.changes
            machine.run_pattern(spec.indicator, spec.pattern)
            if machine.table.changes == before:
                break
        else:
            pytest.fail("no fixpoint in 10 passes")
        size = len(machine.table)
        machine.run_pattern(spec.indicator, spec.pattern)
        assert len(machine.table) == size

    def test_heap_reclaimed_between_passes(self, append_nrev):
        compiled = compile_program(Program.from_text(append_nrev))
        machine = AbstractMachine(compiled)
        from repro.analysis.driver import parse_entry_spec

        spec = parse_entry_spec("nrev(glist, var)")
        machine.run_pattern(spec.indicator, spec.pattern)
        top = machine.heap.top
        machine.run_pattern(spec.indicator, spec.pattern)
        assert machine.heap.top == top


class TestFigure4:
    """The reinterpreted get_list of Figure 4, via tiny programs."""

    def test_get_list_on_glist(self):
        result = analyze("p([H|T], H, T).", "p(glist, var, var)")
        assert success_types(result, "p", 3) == ["g-list", "g", "g-list"]

    def test_get_list_on_any(self):
        result = analyze("p([H|T], H, T).", "p(any, var, var)")
        assert success_types(result, "p", 3)[1] == "any"

    def test_get_list_on_ground(self):
        result = analyze("p([H|T], H, T).", "p(g, var, var)")
        assert success_types(result, "p", 3) == ["[g|g]", "g", "g"]

    def test_get_list_on_const_fails(self):
        result = analyze("p([H|T]).", "p(const)")
        assert not result.predicate(("p", 1)).can_succeed

    def test_get_list_on_var_constructs(self):
        result = analyze("p([a, b]).", "p(var)")
        assert success_types(result, "p", 1) == ["atom-list"]

    def test_get_struct_on_ground(self):
        result = analyze("p(f(X), X).", "p(g, var)")
        assert success_types(result, "p", 2) == ["f(g)", "g"]

    def test_get_struct_wrong_functor_on_list_fails(self):
        result = analyze("p(f(_)).", "p(glist)")
        assert not result.predicate(("p", 1)).can_succeed


class TestDepthPrecision:
    """The term-depth knob trades precision for table size (paper §3)."""

    DERIV = """
    main(D) :- d(f(g(h(k(x)))), D).
    d(f(X), f(Y)) :- d(X, Y).
    d(g(X), g(Y)) :- d(X, Y).
    d(h(X), h(Y)) :- d(X, Y).
    d(k(X), k(Y)) :- d(X, Y).
    d(x, 1).
    """

    def test_deep_limit_keeps_structure(self):
        from repro.domain import tree_to_text

        result = analyze(self.DERIV, "main(var)", depth=8)
        assert tree_to_text(result.success_types(("main", 1))[0]) == (
            "f(g(h(k(int))))"
        )

    def test_shallow_limit_summarizes(self):
        from repro.domain import tree_to_text

        result = analyze(self.DERIV, "main(var)", depth=2)
        text = tree_to_text(result.success_types(("main", 1))[0])
        assert text.startswith("f(")
        assert "k(" not in text  # the deep layers were summarized

    def test_both_sound_on_groundness(self):
        from repro.domain import GROUND_T, tree_leq

        for depth in (1, 2, 4, 8):
            result = analyze(self.DERIV, "main(var)", depth=depth)
            tree = result.success_types(("main", 1))[0]
            assert tree_leq(tree, GROUND_T)
