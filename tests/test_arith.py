"""Tests for arithmetic evaluation."""

import math

import pytest

from repro.errors import PrologError
from repro.prolog import parse_term
from repro.prolog.arith import compare_numeric, eval_arith, number_term
from repro.prolog.terms import Float, Int


def ev(text):
    return eval_arith(parse_term(text), lambda t: t)


class TestBasicOps:
    def test_add(self):
        assert ev("1 + 2") == 3

    def test_sub(self):
        assert ev("5 - 9") == -4

    def test_mul(self):
        assert ev("6 * 7") == 42

    def test_nested(self):
        assert ev("(1 + 2) * (3 + 4)") == 21

    def test_unary_minus(self):
        assert ev("- (3 + 4)") == -7

    def test_unary_plus(self):
        assert ev("+ (5)") == 5

    def test_abs(self):
        assert ev("abs(-3)") == 3

    def test_sign(self):
        assert ev("sign(-9)") == -1

    def test_min_max(self):
        assert ev("min(3, 5)") == 3
        assert ev("max(3, 5)") == 5


class TestDivision:
    def test_exact_int_division(self):
        assert ev("6 / 3") == 2
        assert isinstance(ev("6 / 3"), int)

    def test_inexact_division_float(self):
        assert ev("7 / 2") == 3.5

    def test_int_div_truncates_toward_zero(self):
        assert ev("7 // 2") == 3
        assert ev("-7 // 2") == -3

    def test_floor_div(self):
        assert ev("-7 div 2") == -4

    def test_mod_sign_follows_divisor(self):
        assert ev("7 mod 2") == 1
        assert ev("-7 mod 2") == 1

    def test_rem_sign_follows_dividend(self):
        assert ev("-7 rem 2") == -1

    def test_zero_divisor(self):
        with pytest.raises(PrologError):
            ev("1 / 0")
        with pytest.raises(PrologError):
            ev("1 // 0")
        with pytest.raises(PrologError):
            ev("1 mod 0")


class TestBitwiseAndMisc:
    def test_shift(self):
        assert ev("1 << 4") == 16
        assert ev("16 >> 2") == 4

    def test_and_or_xor(self):
        assert ev("12 /\\ 10") == 8
        assert ev("12 \\/ 10") == 14
        assert ev("12 xor 10") == 6

    def test_complement(self):
        assert ev("\\ (0)") == -1

    def test_gcd(self):
        assert ev("gcd(12, 18)") == 6

    def test_power(self):
        assert ev("2 ^ 10") == 1024
        assert ev("2 ** 3") == 8.0

    def test_constants(self):
        assert ev("pi") == math.pi

    def test_floor_ceiling(self):
        assert ev("floor(2.7)") == 2
        assert ev("ceiling(2.1)") == 3

    def test_truncate_round(self):
        assert ev("truncate(2.7)") == 2
        assert ev("round(2.5)") == 3

    def test_sqrt(self):
        assert ev("sqrt(16)") == 4.0


class TestErrors:
    def test_unbound_variable(self):
        with pytest.raises(PrologError) as info:
            ev("X + 1")
        assert info.value.kind == "instantiation_error"

    def test_non_evaluable_atom(self):
        with pytest.raises(PrologError) as info:
            ev("foo")
        assert info.value.kind == "type_error"

    def test_non_evaluable_functor(self):
        with pytest.raises(PrologError):
            ev("foo(1, 2)")

    def test_shift_requires_integers(self):
        with pytest.raises(PrologError):
            ev("1.5 << 2")


class TestHelpers:
    def test_number_term(self):
        assert number_term(3) == Int(3)
        assert number_term(2.5) == Float(2.5)

    def test_compare(self):
        assert compare_numeric("<", 1, 2)
        assert compare_numeric(">=", 2, 2)
        assert compare_numeric("=:=", 1, 1.0)
        assert compare_numeric("=\\=", 1, 2)
        assert not compare_numeric(">", 1, 2)
