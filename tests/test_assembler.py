"""Tests for the WAM assembler: round-trips with the listing and
hand-written code that runs."""

import pytest

from repro.bench import BENCHMARKS
from repro.errors import CompileError
from repro.prolog import Program, parse_term, term_to_text
from repro.wam import Machine, compile_program
from repro.wam.assembler import assemble_instruction, assemble_unit
from repro.wam.code import CodeArea
from repro.wam.compile import compile_predicate
from repro.wam.instructions import Label, Reg
from repro.wam.listing import format_instruction, format_unit


class TestInstructionParsing:
    @pytest.mark.parametrize(
        "line",
        [
            "get_constant a, A1",
            "get_constant 'hello world', A2",
            "get_constant 42, A1",
            "get_constant -7, A3",
            "get_structure f/2, X3",
            "get_list A2",
            "put_variable Y1, A2",
            "put_value X4, A1",
            "unify_variable X5",
            "unify_constant []",
            "unify_void 3",
            "allocate 2",
            "call foo/2, 3",
            "execute bar/0",
            "builtin is/2",
            "proceed",
            "neck_cut",
            "cut Y1",
            "try_me_else t2",
            "trust_me",
            "try c0",
            "switch_on_term chain1, tbl1, c2, -1",
            "switch_on_constant {a: c0, 5: c1}",
            "switch_on_structure {f/2: c0}",
        ],
    )
    def test_roundtrip_line(self, line):
        instruction = assemble_instruction(line)
        assert (
            assemble_instruction(format_instruction(instruction)) == instruction
        )

    def test_a_registers_become_x(self):
        instruction = assemble_instruction("put_value A3, A1")
        assert instruction.args[0] == Reg("x", 3)

    def test_y_register(self):
        instruction = assemble_instruction("get_variable Y2, A1")
        assert instruction.args[0] == Reg("y", 2)

    def test_unknown_opcode(self):
        with pytest.raises(CompileError):
            assemble_instruction("frobnicate X1")

    def test_wrong_operand_count(self):
        with pytest.raises(CompileError):
            assemble_instruction("get_list A1, A2")

    def test_bad_register(self):
        with pytest.raises(CompileError):
            assemble_instruction("unify_variable Z9")


class TestUnitRoundTrips:
    @pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
    def test_every_benchmark_predicate_roundtrips(self, bench):
        program = Program.from_text(bench.source)
        for predicate in program.predicates.values():
            unit = compile_predicate(predicate)
            text = format_unit(unit.instructions)
            again = assemble_unit(text, predicate.indicator)
            assert again.instructions == unit.instructions

    def test_clause_labels_detected(self):
        program = Program.from_text("p(a). p(b).")
        unit = compile_predicate(program.predicate(("p", 1)))
        text = format_unit(unit.instructions)
        again = assemble_unit(text, ("p", 1))
        assert again.clause_labels == unit.clause_labels


class TestHandWrittenCode:
    def test_assembled_code_runs(self):
        # A hand-written fact p(hello) plus the service prologue.
        unit = assemble_unit(
            """
            c0:
                get_constant hello, A1
                proceed
            """,
            ("p", 1),
        )
        compiled = compile_program(Program.from_text("dummy."))
        compiled.code.link([unit])
        machine = Machine(compiled)
        solution = machine.run_once(parse_term("p(X)"))
        assert term_to_text(solution["X"]) == "hello"

    def test_comment_stripping(self):
        unit = assemble_unit(
            "get_constant 'a%b', A1  % keeps the quoted percent\nproceed\n",
            ("p", 1),
        )
        assert unit.instructions[0].args[0].name == "a%b"

    def test_hand_written_chain(self):
        unit = assemble_unit(
            """
            chain:
                try_me_else t1
            c0:
                get_constant 1, A1
                proceed
            t1:
                trust_me
            c1:
                get_constant 2, A1
                proceed
            """,
            ("two", 1),
        )
        compiled = compile_program(Program.from_text("dummy."))
        compiled.code.link([unit])
        machine = Machine(compiled)
        values = [
            term_to_text(s["X"]) for s in machine.run(parse_term("two(X)"))
        ]
        assert values == ["1", "2"]
