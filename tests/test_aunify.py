"""Tests for the abstract heap and abstract unification (s_unify)."""

import pytest

from repro.domain import ANY_T, AbsSort, GROUND_T, INTEGER_T, make_struct_tree
from repro.analysis.aheap import (
    ABS,
    cell_summary,
    constant_tree,
    deref,
    make_abs,
    materialize,
)
from repro.analysis.aunify import complex_term_inst, s_unify
from repro.prolog import parse_term
from repro.prolog.terms import NIL, Atom, Int
from repro.wam.cells import CON, LIS, REF, STR, Heap

S = AbsSort


def abs_cell(heap, sort, elem=None):
    return make_abs(heap, sort, elem)


def sort_of(heap, cell):
    resolved, _ = deref(heap, cell)
    assert resolved[0] == ABS
    return resolved[1][0]


class TestAbstractHeap:
    def test_make_abs_returns_ref(self):
        heap = Heap()
        cell = make_abs(heap, S.ANY)
        assert cell[0] == REF
        assert heap.cells[cell[1]][0] == ABS

    def test_deref_follows_to_abs(self):
        heap = Heap()
        cell = make_abs(heap, S.GROUND)
        resolved, address = deref(heap, cell)
        assert resolved == (ABS, (S.GROUND, None))
        assert address == cell[1]

    def test_materialize_var(self):
        heap = Heap()
        cell = materialize(heap, ("s", S.VAR))
        assert heap.is_unbound(cell)

    def test_materialize_nil(self):
        heap = Heap()
        assert materialize(heap, ("l", ("s", S.EMPTY))) == (CON, NIL)

    def test_materialize_struct(self):
        heap = Heap()
        cell = materialize(heap, make_struct_tree("f", (GROUND_T, ANY_T)))
        assert cell[0] == STR

    def test_constant_tree(self):
        assert constant_tree(Atom("x")) == ("s", S.ATOM)
        assert constant_tree(Int(1)) == ("s", S.INTEGER)
        assert constant_tree(NIL) == ("l", ("s", S.EMPTY))

    def test_cell_summary(self):
        heap = Heap()
        assert cell_summary(heap, heap.new_var()) == S.VAR
        assert cell_summary(heap, make_abs(heap, S.NV)) == S.NV
        assert cell_summary(heap, (CON, Atom("a"))) == S.ATOM
        assert cell_summary(heap, heap.encode(parse_term("f(a)"))) == S.GROUND
        assert cell_summary(heap, heap.encode(parse_term("f(X)"))) == S.NV


class TestSUnifySimple:
    def test_any_with_ground(self):
        # Paper: s_unify(any, ground) = ground.
        heap = Heap()
        any_cell = abs_cell(heap, S.ANY)
        ground_cell = abs_cell(heap, S.GROUND)
        assert s_unify(heap, any_cell, ground_cell)
        assert sort_of(heap, any_cell) == S.GROUND
        assert sort_of(heap, ground_cell) == S.GROUND

    def test_aliasing_created(self):
        heap = Heap()
        a = abs_cell(heap, S.ANY)
        b = abs_cell(heap, S.NV)
        assert s_unify(heap, a, b)
        # Later refinement through one side is seen through the other.
        c = abs_cell(heap, S.GROUND)
        assert s_unify(heap, a, c)
        assert sort_of(heap, b) == S.GROUND

    def test_atom_vs_integer_fails(self):
        heap = Heap()
        assert not s_unify(heap, abs_cell(heap, S.ATOM), abs_cell(heap, S.INTEGER))

    def test_var_bound_to_abs(self):
        heap = Heap()
        var = heap.new_var()
        nv = abs_cell(heap, S.NV)
        assert s_unify(heap, var, nv)
        resolved, _ = deref(heap, var)
        assert resolved[0] == ABS

    def test_var_var(self):
        heap = Heap()
        a, b = heap.new_var(), heap.new_var()
        assert s_unify(heap, a, b)
        ra, aa = deref(heap, a)
        rb, ab = deref(heap, b)
        assert aa == ab

    def test_abs_with_constant_instantiates_precisely(self):
        heap = Heap()
        cell = abs_cell(heap, S.CONST)
        assert s_unify(heap, cell, (CON, Atom("hello")))
        resolved, _ = deref(heap, cell)
        assert resolved == (CON, Atom("hello"))

    def test_integer_abs_vs_atom_constant_fails(self):
        heap = Heap()
        assert not s_unify(heap, abs_cell(heap, S.INTEGER), (CON, Atom("a")))

    def test_trail_undoes_instantiation(self):
        heap = Heap()
        cell = abs_cell(heap, S.ANY)
        mark = heap.trail_mark()
        top = heap.top
        assert s_unify(heap, cell, abs_cell(heap, S.GROUND))

        heap.undo_to(mark, top)
        assert sort_of(heap, cell) == S.ANY


class TestSUnifyStructural:
    def test_paper_example_glist_cons(self):
        # s_unify(glist, [Head|Tail]) = [g|glist] (paper Section 4.1).
        heap = Heap()
        glist = abs_cell(heap, S.LIST, GROUND_T)
        head, tail = heap.new_var(), heap.new_var()
        cons_address = heap.top
        heap.cells.extend([head, tail])
        cons = (LIS, cons_address)
        assert s_unify(heap, glist, cons)
        head_resolved, _ = deref(heap, head)
        tail_resolved, _ = deref(heap, tail)
        assert head_resolved[1][0] == S.GROUND
        assert tail_resolved[1][0] == S.LIST

    def test_paper_example_g_with_struct(self):
        # s_unify(g, f(V)) = f(g) with V/g.
        heap = Heap()
        g = abs_cell(heap, S.GROUND)
        v = heap.new_var()
        struct_cell = heap.encode(parse_term("f(X)"))
        # Find the argument slot and alias our variable with it.
        arg_slot = struct_cell[1] + 1
        assert s_unify(heap, v, (REF, arg_slot))
        assert s_unify(heap, g, struct_cell)
        resolved, _ = deref(heap, g)
        assert resolved[0] == STR
        v_resolved, _ = deref(heap, v)
        assert v_resolved[1][0] == S.GROUND

    def test_list_with_nil(self):
        heap = Heap()
        glist = abs_cell(heap, S.LIST, GROUND_T)
        assert s_unify(heap, glist, (CON, NIL))
        resolved, _ = deref(heap, glist)
        assert resolved == (CON, NIL)

    def test_list_vs_wrong_struct_fails(self):
        heap = Heap()
        glist = abs_cell(heap, S.LIST, GROUND_T)
        assert not s_unify(heap, glist, heap.encode(parse_term("f(a)")))

    def test_list_vs_integer_fails(self):
        heap = Heap()
        glist = abs_cell(heap, S.LIST, GROUND_T)
        assert not s_unify(heap, glist, (CON, Int(3)))

    def test_two_lists_merge_elements(self):
        heap = Heap()
        a = abs_cell(heap, S.LIST, ANY_T)
        b = abs_cell(heap, S.LIST, INTEGER_T)
        assert s_unify(heap, a, b)
        resolved, _ = deref(heap, a)
        assert resolved[1] == (S.LIST, INTEGER_T)

    def test_concrete_structures_recursive(self):
        heap = Heap()
        left = heap.encode(parse_term("f(X, b)"))
        right = heap.encode(parse_term("f(a, Y)"))
        assert s_unify(heap, left, right)
        assert heap.decode(left) == parse_term("f(a, b)")

    def test_concrete_mismatch_fails(self):
        heap = Heap()
        assert not s_unify(
            heap,
            heap.encode(parse_term("f(a)")),
            heap.encode(parse_term("g(a)")),
        )

    def test_ground_through_structure(self):
        heap = Heap()
        g = abs_cell(heap, S.GROUND)
        struct_cell = heap.encode(parse_term("f(X, Y)"))
        assert s_unify(heap, g, struct_cell)
        for offset in (1, 2):
            slot, _ = deref(heap, (REF, struct_cell[1] + offset))
            assert slot[1][0] == S.GROUND


class TestComplexTermInst:
    def test_any_grows_any_children(self):
        heap = Heap()
        cell = complex_term_inst(heap, S.ANY, None, ("f", 2))
        assert cell is not None and cell[0] == STR
        for offset in (1, 2):
            slot, _ = deref(heap, heap.cells[cell[1] + offset])
            assert slot == (ABS, (S.ANY, None))

    def test_ground_grows_ground_children(self):
        heap = Heap()
        cell = complex_term_inst(heap, S.GROUND, None, (".", 2))
        assert cell is not None and cell[0] == LIS
        slot, _ = deref(heap, heap.cells[cell[1]])
        assert slot == (ABS, (S.GROUND, None))

    def test_list_grows_elem_and_tail(self):
        heap = Heap()
        cell = complex_term_inst(heap, S.LIST, INTEGER_T, (".", 2))
        assert cell is not None and cell[0] == LIS
        head, _ = deref(heap, heap.cells[cell[1]])
        tail, _ = deref(heap, heap.cells[cell[1] + 1])
        assert head == (ABS, (S.INTEGER, None))
        assert tail == (ABS, (S.LIST, INTEGER_T))

    def test_list_with_structured_elem_materializes(self):
        heap = Heap()
        elem = make_struct_tree("pair", (INTEGER_T, ANY_T))
        cell = complex_term_inst(heap, S.LIST, elem, (".", 2))
        assert cell is not None
        head, _ = deref(heap, heap.cells[cell[1]])
        assert head[0] == STR

    def test_const_cannot_grow(self):
        heap = Heap()
        assert complex_term_inst(heap, S.CONST, None, ("f", 1)) is None
        assert complex_term_inst(heap, S.ATOM, None, (".", 2)) is None

    def test_list_wrong_functor(self):
        heap = Heap()
        assert complex_term_inst(heap, S.LIST, GROUND_T, ("f", 1)) is None

    def test_empty_list_cannot_grow(self):
        heap = Heap()
        assert complex_term_inst(heap, S.LIST, ("s", S.EMPTY), (".", 2)) is None
