"""Tests for the three baseline analyzers and their agreement with the
compiled abstract WAM."""

import pytest

from repro.analysis import Analyzer
from repro.analysis.patterns import pattern_to_trees
from repro.baselines import (
    AbsStore,
    MetaAnalyzer,
    PrologAnalyzer,
    TransformAnalyzer,
    transform_program,
)
from repro.domain import AbsSort, GROUND_T, INTEGER_T, tree_leq, tree_lub
from repro.errors import AnalysisError
from repro.prolog import Program, normalize_program

S = AbsSort


def table_map(table):
    return {
        (indicator, entry.calling): entry.success
        for indicator, entry in table.all_entries()
    }


def per_pred_success(table):
    out = {}
    for indicator, entry in table.all_entries():
        if entry.success is None:
            continue
        trees = pattern_to_trees(entry.success)
        if indicator in out:
            out[indicator] = tuple(
                tree_lub(a, b) for a, b in zip(out[indicator], trees)
            )
        else:
            out[indicator] = trees
    return out


def assert_coarser_or_equal(fast_table, baseline_table):
    fast = per_pred_success(fast_table)
    base = per_pred_success(baseline_table)
    for indicator, trees in fast.items():
        assert indicator in base, f"baseline missing {indicator}"
        for fast_tree, base_tree in zip(trees, base[indicator]):
            assert tree_leq(fast_tree, base_tree), (
                f"{indicator}: {fast_tree} not below {base_tree}"
            )


class TestAbsStore:
    def test_copy_isolates(self):
        store = AbsStore()
        node = store.new_node(("sort", S.ANY))
        snapshot = store.copy()
        snapshot.nodes[node] = ("sort", S.GROUND)
        assert store.nodes[node] == ("sort", S.ANY)

    def test_unify_sorts(self):
        store = AbsStore()
        a = store.new_node(("sort", S.ANY))
        b = store.new_node(("sort", S.GROUND))
        assert store.s_unify(a, b)
        _, value = store.walk(a)
        assert value == ("sort", S.GROUND)

    def test_unify_failure(self):
        store = AbsStore()
        a = store.new_node(("sort", S.ATOM))
        b = store.new_node(("sort", S.INTEGER))
        assert not store.s_unify(a, b)

    def test_abstract_matches_pattern_module(self):
        from repro.analysis.patterns import Pattern, canonicalize

        store = AbsStore()
        v = store.new_var()
        pattern = store.abstract([v, v], 4)
        assert pattern == canonicalize(
            Pattern((("i", S.VAR, 0), ("i", S.VAR, 0)))
        )

    def test_materialize_roundtrip(self):
        from repro.analysis.patterns import Pattern, canonicalize

        store = AbsStore()
        pattern = canonicalize(
            Pattern((("i", S.GROUND, 0), ("li", INTEGER_T, 1)))
        )
        idents = store.materialize(pattern)
        assert store.abstract(idents, 4) == pattern


class TestMetaAnalyzer:
    def test_matches_fast_path_exactly(self, append_nrev):
        fast = Analyzer(append_nrev).analyze(["nrev(glist, var)"])
        meta = MetaAnalyzer(append_nrev).analyze(["nrev(glist, var)"])
        assert table_map(fast.table) == table_map(meta.table)

    def test_counts_interpretive_work(self, append_nrev):
        meta = MetaAnalyzer(append_nrev).analyze(["nrev(glist, var)"])
        assert meta.store_copies > 0
        assert meta.goals_interpreted > 0

    def test_cut_program(self):
        text = "max(X, Y, X) :- X >= Y, !. max(_, Y, Y)."
        fast = Analyzer(text).analyze(["max(int, int, var)"])
        meta = MetaAnalyzer(text).analyze(["max(int, int, var)"])
        assert table_map(fast.table) == table_map(meta.table)

    def test_no_entries_rejected(self, append_nrev):
        with pytest.raises(AnalysisError):
            MetaAnalyzer(append_nrev).analyze([])


class TestPrologAnalyzer:
    def test_nrev_sound_and_coarser(self, append_nrev):
        fast = Analyzer(append_nrev).analyze(["nrev(glist, var)"])
        baseline = PrologAnalyzer(append_nrev).analyze(["nrev(glist, var)"])
        assert_coarser_or_equal(fast.table, baseline.table)

    def test_nrev_types_exact(self, append_nrev):
        baseline = PrologAnalyzer(append_nrev).analyze(["nrev(glist, var)"])
        succ = per_pred_success(baseline.table)
        assert succ[("nrev", 2)] == (("l", GROUND_T), ("l", GROUND_T))

    def test_counts_resolution_steps(self, append_nrev):
        baseline = PrologAnalyzer(append_nrev).analyze(["nrev(glist, var)"])
        assert baseline.resolution_steps > 100

    def test_reserved_atoms_rejected(self):
        with pytest.raises(AnalysisError):
            PrologAnalyzer("p(any).")

    def test_reserved_functor_rejected(self):
        with pytest.raises(AnalysisError):
            PrologAnalyzer("p(list(x)).")

    def test_cut_program(self):
        text = "max(X, Y, X) :- X >= Y, !. max(_, Y, Y)."
        fast = Analyzer(text).analyze(["max(int, int, var)"])
        baseline = PrologAnalyzer(text).analyze(["max(int, int, var)"])
        assert_coarser_or_equal(fast.table, baseline.table)

    def test_slower_than_compiled(self, append_nrev):
        fast = Analyzer(append_nrev).analyze(["nrev(glist, var)"])
        baseline = PrologAnalyzer(append_nrev).analyze(["nrev(glist, var)"])
        assert baseline.seconds > fast.seconds


class TestTransformAnalyzer:
    def test_transformation_shape(self, append_nrev):
        program = normalize_program(Program.from_text(append_nrev))
        transformed = transform_program(program)
        names = {indicator[0] for indicator in transformed.indicators()}
        assert "app$call" in names and "app$exp" in names
        # Exploring predicate: one clause per source clause + terminator.
        assert len(transformed.clauses(("app$exp", 2))) == 3

    def test_update_and_fail_at_clause_end(self, append_nrev):
        program = normalize_program(Program.from_text(append_nrev))
        transformed = transform_program(program)
        clause = transformed.clauses(("app$exp", 2))[0]
        names = [
            goal.name for goal in clause.body if goal.is_callable()
        ]
        assert names[-1] == "fail"
        assert names[-2] == "$update"

    def test_nrev_sound_and_coarser(self, append_nrev):
        fast = Analyzer(append_nrev).analyze(["nrev(glist, var)"])
        baseline = TransformAnalyzer(append_nrev).analyze(["nrev(glist, var)"])
        assert_coarser_or_equal(fast.table, baseline.table)

    def test_table_keyed_by_source_predicates(self, append_nrev):
        baseline = TransformAnalyzer(append_nrev).analyze(["nrev(glist, var)"])
        assert ("nrev", 2) in {ind for ind, _ in baseline.table.all_entries()}
