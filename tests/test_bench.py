"""Tests for the benchmark programs and the Table 1 / Table 2 harnesses."""

import json

import pytest

from repro.analysis import Analyzer
from repro.bench import (
    BENCHMARKS,
    TABLE1_BY_NAME,
    format_table1,
    format_table2,
    get_benchmark,
    measure_benchmark,
    profile_program,
    project_table2,
)
from repro.prolog import Program
from repro.wam import compile_program


class TestBenchmarkPrograms:
    def test_eleven_benchmarks(self):
        assert len(BENCHMARKS) == 11

    def test_names_match_paper(self):
        assert [b.name for b in BENCHMARKS] == [
            "log10",
            "ops8",
            "times10",
            "divide10",
            "tak",
            "nreverse",
            "qsort",
            "query",
            "zebra",
            "serialise",
            "queens_8",
        ]

    @pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
    def test_parses_and_compiles(self, bench):
        compiled = compile_program(Program.from_text(bench.source))
        assert compiled.total_size() > 0

    @pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
    def test_profile_matches_paper_args_preds(self, bench):
        program = Program.from_text(bench.source)
        compiled = compile_program(program)
        profile = profile_program(bench.name, program, compiled)
        paper = TABLE1_BY_NAME[bench.name]
        assert profile.args == paper.args, "Args column must match the paper"
        assert profile.preds == paper.preds, "Preds column must match the paper"

    @pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
    def test_code_size_same_magnitude_as_paper(self, bench):
        compiled = compile_program(Program.from_text(bench.source))
        paper = TABLE1_BY_NAME[bench.name]
        ratio = compiled.total_size() / paper.size
        assert 0.4 < ratio < 3.5

    @pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
    def test_analysis_succeeds(self, bench):
        result = Analyzer(bench.source).analyze([bench.entry])
        assert result.predicate(("main", 0)).can_succeed

    @pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
    def test_exec_count_same_magnitude_as_paper(self, bench):
        result = Analyzer(bench.source).analyze([bench.entry])
        paper = TABLE1_BY_NAME[bench.name]
        ratio = result.instructions_executed / paper.exec_count
        assert 0.1 < ratio < 10

    def test_get_benchmark(self):
        assert get_benchmark("tak").name == "tak"
        with pytest.raises(KeyError):
            get_benchmark("nope")


class TestHarness:
    def test_measure_one_row_meta_baseline(self):
        row = measure_benchmark(get_benchmark("tak"), repeats=1, baseline="meta")
        assert row.name == "tak"
        assert row.ours_seconds > 0
        assert row.baseline_seconds > 0
        assert row.size > 0
        assert row.exec_count > 0

    def test_format_table1(self):
        row = measure_benchmark(get_benchmark("tak"), repeats=1, baseline="meta")
        text = format_table1([row])
        assert "tak" in text
        assert "Speed-Up" in text
        assert "average" in text
        assert "paper" in text

    def test_format_table1_without_paper(self):
        row = measure_benchmark(get_benchmark("tak"), repeats=1, baseline="meta")
        assert "paper" not in format_table1([row], show_paper=False)

    def test_table2_projection(self):
        row = measure_benchmark(get_benchmark("tak"), repeats=1, baseline="meta")
        projected = project_table2([row])
        assert len(projected) == 1
        ratios = projected[0].ratios
        # The SS2 column (index 9.0) must be 9x the 3/60 column (index 1).
        assert ratios[-1] == pytest.approx(ratios[0] * 9.0)
        text = format_table2(projected)
        assert "tak" in text and "SS2" in text

    def test_unknown_baseline(self):
        with pytest.raises(ValueError):
            measure_benchmark(get_benchmark("tak"), repeats=1, baseline="x")


class TestStressHarness:
    def test_tight_budget_contract_holds(self, capsys):
        import io

        from repro.bench.stress import run_stress

        out = io.StringIO()
        status = run_stress(max_steps=300, expect_degraded=True, out=out)
        text = out.getvalue()
        assert status == 0
        assert "0 contract violation(s)" in text
        assert "degraded" in text

    def test_generous_budget_all_exact(self):
        import io

        from repro.bench.stress import run_stress

        out = io.StringIO()
        assert run_stress(max_steps=None, out=out) == 0
        assert ", 0 degraded," in out.getvalue()

    def test_expect_degraded_fails_when_nothing_trips(self):
        import io

        from repro.bench.stress import run_stress

        out = io.StringIO()
        assert run_stress(max_steps=None, expect_degraded=True, out=out) == 1
        assert "no benchmark degraded" in out.getvalue()

    def test_main_argv(self):
        import contextlib
        import io

        from repro.bench.stress import main

        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            status = main(["--max-steps", "300", "--expect-degraded"])
        assert status == 0


class TestServeBenchEmit:
    """The machine-readable cold/warm/incremental emitter."""

    def test_emit_one_benchmark(self, tmp_path, capsys):
        from repro.bench.emit import main

        out = tmp_path / "BENCH_serve.json"
        # Every artifact the emitter writes must be redirected to
        # tmp_path: the defaults write BENCH_obs.json / BENCH_opt.json
        # into the cwd, clobbering the checked-in full-suite artifacts
        # with a one-benchmark run.
        obs_out = tmp_path / "BENCH_obs.json"
        opt_out = tmp_path / "BENCH_opt.json"
        assert main([
            "--out", str(out), "--obs-out", str(obs_out),
            "--opt-out", str(opt_out),
            "--repeats", "1", "--only", "nreverse",
        ]) == 0
        capsys.readouterr()
        document = json.loads(out.read_text())
        [row] = document["benchmarks"]
        assert row["name"] == "nreverse"
        assert row["cache"]["warm"] == "hit"
        assert row["cache"]["incremental"] == "incremental"
        assert row["warm_ms"] <= row["cold_ms"]
        # sorted-keys JSON: re-serializing changes nothing
        assert out.read_text() == json.dumps(
            document, indent=2, sort_keys=True
        ) + "\n"
        obs_document = json.loads(obs_out.read_text())
        [obs_row] = obs_document["benchmarks"]
        assert obs_row["name"] == "nreverse"
        assert obs_row["instructions"] > 0
        overhead = obs_document["overhead"]
        assert overhead["passes"] >= 15
        assert overhead["metrics_off_bound_percent"] == 3.0
        assert overhead["trace_off_bound_percent"] == 1.0
        for key in ("metrics_off_ms", "metrics_on_ms",
                    "metrics_off_again_ms", "metrics_off_delta_percent",
                    "metrics_on_overhead_percent", "trace_off_ms",
                    "trace_off_delta_percent"):
            assert key in overhead
        opt_document = json.loads(opt_out.read_text())
        [opt_row] = opt_document["benchmarks"]
        assert opt_row["name"] == "nreverse"
        assert opt_row["baseline_instructions"] > 0
        # The optimizer must never emit code that retires more
        # instructions than the baseline.
        assert (opt_row["optimized_instructions"]
                <= opt_row["baseline_instructions"])
        assert opt_out.read_text() == json.dumps(
            opt_document, indent=2, sort_keys=True
        ) + "\n"

    def test_edit_changes_entry_predicate_only(self):
        from repro.bench.emit import _edit
        from repro.serve.fingerprint import predicate_fingerprints
        from repro.prolog.program import Program as _Program

        bench = get_benchmark("nreverse")
        edited = _edit(bench.source, bench.entry)
        base = predicate_fingerprints(_Program.from_text(bench.source))
        after = predicate_fingerprints(_Program.from_text(edited))
        changed = {ind for ind in base if base[ind] != after.get(ind)}
        assert len(changed) == 1


class TestLoadBench:
    """The gateway load benchmark (scaled down for CI)."""

    def test_load_bench_redirects_artifact_and_reports_shed(
        self, tmp_path, capsys
    ):
        from repro.bench.load import main

        # --out MUST be redirected to tmp_path: the default writes
        # BENCH_load.json into the cwd, clobbering the checked-in
        # full-scale artifact with a smoke-sized run.
        out = tmp_path / "BENCH_load.json"
        assert main([
            "--out", str(out),
            "--requests", "40",
            "--overload-requests", "80",
            "--connections", "4",
            "--queue-depth", "4",
            "--steady-concurrency", "4",
            "--overload-concurrency", "48",
        ]) == 0
        capsys.readouterr()
        document = json.loads(out.read_text())
        assert document["suite"] == "repro.bench.load"
        # Every request was answered: shed is fine, silence is not.
        assert document["unserved"] == 0
        assert document["unstructured_errors"] == 0
        # The overload phase actually overloaded.
        assert document["phases"]["overload"]["shed"] > 0
        # The backoff phase's well-behaved client actually honored
        # queue-full retry_after_ms hints (a zero hint — cold shard
        # EWMA — is retried immediately and not counted as honored).
        backoff = document["phases"]["backoff"]
        assert 0 < backoff["retry_after_honored"] <= backoff["retries"]
        for phase in ("warmup", "steady", "overload", "backoff"):
            latency = document["phases"][phase]["latency"]
            for key in ("p50_ms", "p95_ms", "p99_ms"):
                assert latency[key] >= 0.0
        assert document["phases"]["overload"][
            "saturation_throughput_rps"] > 0
        assert out.read_text() == json.dumps(
            document, indent=2, sort_keys=True
        ) + "\n"
