"""Checkpointed, resumable fixpoint analysis (repro.robust.checkpoint).

Covers the snapshot format (canonical, checksummed, hash-seed
independent), the emission policy, resume planting, the store's
checkpoint namespace failure modes (torn tail, checksum mismatch,
journal replay, GC), the supervisor's resume-on-retry and crash-loop
containment, and a miniature kill-every-m campaign asserting the
forward-progress contract end to end.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.analysis.driver import Analyzer, parse_entry_spec
from repro.analysis.table import ExtensionTable
from repro.obs import MetricsRegistry
from repro.prolog.program import Program
from repro.robust import Budget
from repro.robust import checkpoint as ckpt
from repro.serve import ServiceConfig, Supervisor, SupervisorConfig
from repro.serve.callgraph import CallGraph
from repro.serve.scheduler import SCCScheduler
from repro.serve.store import DiskStore, ResultStore

NREV = """
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).
append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).
"""

ENTRY = "nrev(glist, var)"


def _analyzed_table(text=NREV, entries=(ENTRY,)):
    return Analyzer(Program.from_text(text)).analyze(list(entries)).table


def _snapshot(**overrides):
    table = _analyzed_table()
    kwargs = dict(config="cfg", key="key", entries=[ENTRY], iterations=7)
    kwargs.update(overrides)
    return ckpt.snapshot(table, **kwargs)


# ----------------------------------------------------------------------
# Snapshot format.


def test_snapshot_round_trips_through_plant():
    table = _analyzed_table()
    snap = _snapshot()
    assert snap["format"] == ckpt.CHECKPOINT_FORMAT
    assert ckpt.load(snap, config="cfg", key="key") is snap
    replanted = ExtensionTable()
    assert ckpt.plant(snap, replanted) == len(snap["table"]) > 0
    again = ckpt.snapshot(
        replanted, config="cfg", key="key", entries=[ENTRY], iterations=7
    )
    assert again["table"] == snap["table"]
    # The entry values themselves round-tripped, not just the shape.
    for indicator, entry in table.all_entries():
        twin = replanted.find(indicator, entry.calling)
        assert twin is not None
        assert twin.success == entry.success
        assert twin.may_share == entry.may_share


def test_snapshot_survives_json_round_trip():
    snap = _snapshot()
    revived = json.loads(json.dumps(snap))
    assert ckpt.load(revived, config="cfg", key="key") == snap


def test_snapshot_is_hashseed_independent():
    script = (
        "import json, sys\n"
        "sys.path.insert(0, %r)\n"
        "from repro.analysis.driver import Analyzer\n"
        "from repro.robust import checkpoint as ckpt\n"
        "table = Analyzer(%r).analyze([%r]).table\n"
        "snap = ckpt.snapshot(table, config='c', key='k', entries=[%r])\n"
        "print(json.dumps(snap, sort_keys=True))\n"
    ) % (
        os.path.join(os.path.dirname(__file__), os.pardir, "src"),
        NREV, ENTRY, ENTRY,
    )
    outputs = set()
    for seed in ("0", "42"):
        env = dict(os.environ, PYTHONHASHSEED=seed)
        outputs.add(subprocess.run(
            [sys.executable, "-c", script],
            env=env, capture_output=True, text=True, check=True,
        ).stdout)
    assert len(outputs) == 1


def test_load_rejects_damage_and_identity_mismatch():
    metrics = MetricsRegistry()
    snap = _snapshot()
    torn = dict(snap, table=snap["table"][:-1])  # checksum now wrong
    wrong_format = dict(snap, format="repro.checkpoint/999")
    assert ckpt.load(torn, metrics=metrics) is None
    assert ckpt.load(wrong_format, metrics=metrics) is None
    assert ckpt.load("not a dict", metrics=metrics) is None
    assert ckpt.load(snap, config="other", metrics=metrics) is None
    assert ckpt.load(snap, key="other", metrics=metrics) is None
    assert metrics.counter("checkpoint.invalid", reason="checksum").value == 1
    assert metrics.counter("checkpoint.invalid", reason="format").value == 1
    assert (
        metrics.counter("checkpoint.invalid", reason="config-mismatch").value
        == 1
    )


def test_widened_entries_are_never_snapshotted():
    table = _analyzed_table()
    table.widen_to_top("degraded")
    snap = ckpt.snapshot(table, config="c", key="k")
    assert snap["table"] == []


def test_cursor_and_rank_helpers_tolerate_garbage():
    assert ckpt.cursor_iterations(None) == 0
    assert ckpt.cursor_iterations({"cursor": "nope"}) == 0
    assert ckpt.frozen_entries({"table": "nope"}) == 0
    assert ckpt.snapshot_rank(None) == (0, 0)
    snap = _snapshot(iterations=9)
    assert ckpt.cursor_iterations(snap) == 9
    assert ckpt.snapshot_rank(snap) == (ckpt.frozen_entries(snap), 9)


def test_rank_prefers_frozen_frontier_over_cursor():
    """A thawed verification-phase snapshot (big cursor, zero frozen)
    must lose to an earlier stabilization-boundary snapshot that banked
    the frozen frontier — cursor is a clock, frozen is progress."""
    table = _analyzed_table()
    frontier = ckpt.snapshot(table, config="c", key="k", iterations=5)
    for item in frontier["table"]:
        item["frozen"] = True
    frontier["sha256"] = ckpt.checkpoint_checksum(frontier)
    thawed = ckpt.snapshot(table, config="c", key="k", iterations=50)
    assert ckpt.frozen_entries(thawed) == 0
    assert ckpt.snapshot_rank(frontier) > ckpt.snapshot_rank(thawed)


def test_plant_respects_or_thaws_frozen_flags():
    snap = _snapshot()
    for item in snap["table"]:
        item["frozen"] = True
    respected = ExtensionTable()
    ckpt.plant(snap, respected, respect_frozen=True)
    assert all(entry.frozen for _, entry in respected.all_entries())
    thawed = ExtensionTable()
    ckpt.plant(snap, thawed, respect_frozen=False)
    assert not any(entry.frozen for _, entry in thawed.all_entries())


# ----------------------------------------------------------------------
# The emission policy.


def test_policy_cadence_flush_and_on_pass_ordering():
    table = _analyzed_table()
    emitted = []
    seen_at_emit = []

    def sink(snap):
        emitted.append(snap)

    order = []
    policy = ckpt.CheckpointPolicy(
        sink, every=2, config="c", key="k", entries=[ENTRY],
        on_pass=lambda n: order.append((n, len(emitted))),
    )
    for _ in range(5):
        policy.note_pass(table)
    assert len(emitted) == 2  # passes 2 and 4
    assert [ckpt.cursor_iterations(s) for s in emitted] == [2, 4]
    # on_pass fires AFTER the emit decision: at pass 2 the snapshot
    # already exists, so an injected kill lands on a covered boundary.
    assert (2, 1) in order and (4, 2) in order
    flushed = policy.flush(table)
    assert len(emitted) == 3 and flushed is emitted[-1]
    assert ckpt.cursor_iterations(flushed) == 5
    # flush is idempotent per pass: nothing new to cover.
    assert policy.flush(table) is flushed and len(emitted) == 3


def test_policy_deadline_proximity_fires_once():
    table = _analyzed_table()
    emitted = []
    budget = Budget(deadline=0.0).start()  # already past: always imminent
    policy = ckpt.CheckpointPolicy(
        emitted.append, every=1000, budget=budget,
        metrics=MetricsRegistry(),
    )
    policy.note_pass(table)
    policy.note_pass(table)
    assert len(emitted) == 1  # proximity triggers once, not per pass


def test_policy_swallows_sink_failures():
    table = _analyzed_table()

    def bad_sink(snap):
        raise OSError("disk full")

    policy = ckpt.CheckpointPolicy(bad_sink, every=1)
    policy.note_pass(table)  # must not raise
    assert policy.last is not None and policy.emitted == 1


def test_policy_cursor_accumulates_across_attempts():
    table = _analyzed_table()
    policy = ckpt.CheckpointPolicy(
        None, every=1, base_iterations=40, attempts=3
    )
    policy.note_pass(table)
    assert ckpt.cursor_iterations(policy.last) == 41
    assert policy.last["cursor"]["attempts"] == 3


# ----------------------------------------------------------------------
# The store's checkpoint namespace (failure modes).


CKPT_KEY = ResultStore.CHECKPOINT_PREFIX + "abc123"


def test_checkpoint_namespace_bypasses_exact_gate_but_only_there():
    store = ResultStore()
    snap = _snapshot()
    assert store.put_checkpoint(CKPT_KEY, snap)
    assert store.get_checkpoint(CKPT_KEY) == snap
    with pytest.raises(ValueError):
        store.put_checkpoint("result:abc", snap)
    with pytest.raises(ValueError):
        store.get_checkpoint("result:abc")
    # An ordinary put still refuses non-exact values.
    assert not store.put("result:abc", {"x": 1}, status="degraded")


def test_torn_checkpoint_file_is_quarantined_not_crashed(tmp_path):
    disk = DiskStore(str(tmp_path))
    store = ResultStore(disk=disk)
    store.put_checkpoint(CKPT_KEY, _snapshot())
    path = disk._path(CKPT_KEY)
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text[: len(text) // 2])  # torn write
    cold = ResultStore(disk=DiskStore(str(tmp_path)))
    assert cold.get_checkpoint(CKPT_KEY) is None  # miss, not a crash
    quarantine = tmp_path / DiskStore.QUARANTINE_NAME
    assert quarantine.is_dir() and any(quarantine.iterdir())


def test_checksum_mismatch_checkpoint_is_quarantined(tmp_path):
    disk = DiskStore(str(tmp_path))
    store = ResultStore(disk=disk)
    store.put_checkpoint(CKPT_KEY, _snapshot())
    path = disk._path(CKPT_KEY)
    with open(path, "r", encoding="utf-8") as handle:
        record = json.load(handle)
    record["value"]["cursor"]["iterations"] = 999  # bit rot, stale digest
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle)
    cold = DiskStore(str(tmp_path))
    assert cold.get(CKPT_KEY) is None
    assert cold.checksum_failures == 1 and cold.quarantined == 1


def test_journal_replay_restores_newest_intact_snapshot(tmp_path):
    disk = DiskStore(str(tmp_path), journal=True)
    store = ResultStore(disk=disk)
    older = _snapshot(iterations=3)
    newer = _snapshot(iterations=9)
    store.put_checkpoint(CKPT_KEY, older)
    store.put_checkpoint(CKPT_KEY, newer)
    disk.close()
    os.unlink(disk._path(CKPT_KEY))  # the crash ate the entry file
    # Startup replays the journal; the latest journaled record wins.
    healed = ResultStore(disk=DiskStore(str(tmp_path), journal=True))
    restored = healed.get_checkpoint(CKPT_KEY)
    assert ckpt.cursor_iterations(restored) == 9
    assert ckpt.load(restored, config="cfg", key="key") is not None


def test_drop_checkpoint_gcs_memory_and_disk(tmp_path):
    metrics = MetricsRegistry()
    store = ResultStore(disk=DiskStore(str(tmp_path)), metrics=metrics)
    store.put_checkpoint(CKPT_KEY, _snapshot())
    assert store.drop_checkpoint(CKPT_KEY)
    assert store.get_checkpoint(CKPT_KEY) is None
    assert not os.path.exists(store.disk._path(CKPT_KEY))
    assert metrics.counter("checkpoint.gc").value == 1
    assert not store.drop_checkpoint(CKPT_KEY)  # second drop is a no-op


# ----------------------------------------------------------------------
# Supervisor: resume-on-retry, crash-loop containment, deadline
# semantics under retry.


def _scratch():
    return Analyzer(Program.from_text(NREV)).analyze([ENTRY]).stable_dict()


def _supervisor(service_config=None, **kwargs):
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("max_retries", 2)
    kwargs.setdefault("backoff_base", 0.01)
    kwargs.setdefault("grace", 0.2)
    return Supervisor(
        service_config
        if service_config is not None
        else ServiceConfig(checkpoint_every=1),
        SupervisorConfig(**kwargs),
    )


def test_killed_worker_retry_resumes_from_wire_checkpoint():
    supervisor = _supervisor()
    try:
        response = supervisor.handle({
            "op": "analyze", "text": NREV, "entries": [ENTRY],
            # Satellite contract: the per-attempt deadline re-arms fresh
            # on the retry, so a generous deadline must not starve it.
            "budget": {"deadline": 30.0},
            "_chaos": {"kill_at_iteration": 3},
        })
        assert response["ok"] and response["status"] == "exact"
        assert response["attempts"] == 2
        assert response["result"] == _scratch()
        assert supervisor.metrics.counter("resume.wire_attached").value >= 1
    finally:
        supervisor.close()


def test_crash_loop_is_contained_and_invalidate_heals():
    supervisor = _supervisor(max_retries=0, crash_loop_threshold=3)
    try:
        poison = {
            "op": "analyze", "text": NREV, "entries": [ENTRY],
            "_chaos": {"kill": True},
        }
        kinds = [
            supervisor.handle(dict(poison)).get("error_kind")
            for _ in range(3)
        ]
        assert kinds == ["worker-crash", "worker-crash", "crash-loop"]
        # Quarantined: even a clean resend is refused without a worker.
        clean = {"op": "analyze", "text": NREV, "entries": [ENTRY]}
        refused = supervisor.handle(dict(clean))
        assert refused["error_kind"] == "crash-loop"
        assert refused["attempts"] == 0 and refused["retriable"] is False
        metrics = supervisor.metrics
        assert metrics.counter("serve.worker.crash_loops").value == 1
        assert metrics.counter("serve.worker.crash_loop_rejects").value == 1
        supervisor.handle({"op": "invalidate"})
        healed = supervisor.handle(dict(clean))
        assert healed["ok"] and healed["status"] == "exact"
        assert healed["result"] == _scratch()
    finally:
        supervisor.close()


def test_cumulative_timeout_bounds_the_retry_chain():
    supervisor = _supervisor(max_retries=50, cumulative_timeout=0.0)
    try:
        response = supervisor.handle({
            "op": "analyze", "text": NREV, "entries": [ENTRY],
            "_chaos": {"kill": True},
        })
        assert not response["ok"]
        assert response["error_kind"] == "timeout"
        assert response["retriable"] is False
        assert response["attempts"] == 1  # chain cut, not 50 retries
    finally:
        supervisor.close()


# ----------------------------------------------------------------------
# The forward-progress contract, in miniature.


def test_kill_every_m_campaign_makes_monotone_progress():
    """One benchmark-sized program through the same loop the chaos
    campaign runs: kill on every 4th pass boundary, resume from the
    best-ranked surviving snapshot, assert exact completion with a
    non-increasing re-executed-iteration series."""
    from repro.bench.chaos import _SimulatedKill, _scheduled_attempt
    from repro.bench.programs import BY_NAME

    benchmark = BY_NAME["queens_8"]
    reference, _ = _scheduled_attempt(benchmark)
    best = None
    remaining = []
    for attempt in range(20):
        emitted = []
        try:
            result, passes = _scheduled_attempt(
                benchmark, resume=best, kill_at=4, sink=emitted.append
            )
        except _SimulatedKill:
            for snap in emitted:
                if ckpt.snapshot_rank(snap) >= ckpt.snapshot_rank(best):
                    best = snap
            _, probe = _scheduled_attempt(benchmark, resume=best)
            remaining.append(probe)
            continue
        remaining.append(passes)
        break
    else:
        pytest.fail("campaign never completed")
    assert result.stable_dict() == reference.stable_dict()
    assert len(remaining) > 2  # the kill actually bit, repeatedly
    assert all(
        remaining[i + 1] <= remaining[i] for i in range(len(remaining) - 1)
    )


def test_scheduler_resume_plants_and_converges_identically():
    analyzer = Analyzer(Program.from_text(NREV))
    graph = CallGraph.from_compiled(analyzer.compiled)
    spec = parse_entry_spec(ENTRY)
    scratch, _ = SCCScheduler(analyzer, graph).analyze([spec])
    snap = ckpt.snapshot(
        scratch.table, config="c", key="k", entries=[ENTRY], iterations=5
    )
    resumed, stats = SCCScheduler(analyzer, graph).analyze(
        [spec], resume=ckpt.load(snap, config="c", key="k")
    )
    assert stats.resume_planted == len(snap["table"])
    assert resumed.stable_dict() == scratch.stable_dict()
