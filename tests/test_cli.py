"""Tests for the command line entry points."""

import json

import pytest

from repro.cli import main_analyze, main_lint, main_prolog
from tests.conftest import APPEND_NREV


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.pl"
    path.write_text(APPEND_NREV)
    return str(path)


class TestAnalyzeCli:
    def test_basic(self, program_file, capsys):
        assert main_analyze([program_file, "nrev(glist, var)"]) == 0
        out = capsys.readouterr().out
        assert "nrev/2" in out

    def test_table_flag(self, program_file, capsys):
        main_analyze([program_file, "nrev(glist, var)", "--table"])
        out = capsys.readouterr().out
        assert "->" in out

    def test_depth_flag(self, program_file, capsys):
        main_analyze([program_file, "nrev(glist, var)", "--depth", "2"])
        assert "depth 2" in capsys.readouterr().out

    def test_multiple_entries(self, program_file, capsys):
        main_analyze([program_file, "nrev(glist, var)", "app(var, var, glist)"])
        assert "app/3" in capsys.readouterr().out


class TestPrologCli:
    def test_run_query(self, program_file, capsys):
        assert main_prolog([program_file, "nrev([1,2,3], R)"]) == 0
        assert "R = [3, 2, 1]" in capsys.readouterr().out

    def test_failure_exit_code(self, program_file, capsys):
        assert main_prolog([program_file, "nrev(abc, R)"]) == 1
        assert "false" in capsys.readouterr().out

    def test_all_solutions(self, program_file, capsys):
        main_prolog([program_file, "app(X, Y, [1, 2])", "--all"])
        out = capsys.readouterr().out
        assert out.count("X =") == 3

    def test_solver_engine(self, program_file, capsys):
        main_prolog([program_file, "nrev([1,2], R)", "--engine", "solver"])
        assert "R = [2, 1]" in capsys.readouterr().out

    def test_listing(self, program_file, capsys):
        main_prolog([program_file, "--listing"])
        out = capsys.readouterr().out
        assert "nrev/2:" in out

    def test_zero_arity_goal(self, tmp_path, capsys):
        path = tmp_path / "hello.pl"
        path.write_text("main :- write(hello), nl.")
        main_prolog([str(path), "main"])
        out = capsys.readouterr().out
        assert "true" in out
        assert "hello" in out

    def test_library_flag(self, tmp_path, capsys):
        path = tmp_path / "uses_lib.pl"
        path.write_text("go(R) :- append([1], [2], R).")
        main_prolog([str(path), "go(R)", "--library"])
        assert "R = [1, 2]" in capsys.readouterr().out


class TestAnalyzeClientFlags:
    def test_parallel_flag(self, tmp_path, capsys):
        path = tmp_path / "par.pl"
        path.write_text("main :- p(X), q(X). p(1). q(_).")
        main_analyze([str(path), "main", "--parallel"])
        out = capsys.readouterr().out
        assert "and-parallelism" in out
        assert "ground(X)" in out

    def test_deadcode_flag(self, tmp_path, capsys):
        path = tmp_path / "dead.pl"
        path.write_text("main :- p. p. orphan.")
        main_analyze([str(path), "main", "--deadcode"])
        assert "unreachable: orphan/0" in capsys.readouterr().out

    def test_specialize_flag(self, program_file, capsys):
        main_analyze([program_file, "nrev(glist, var)", "--specialize"])
        assert "specialization" in capsys.readouterr().out

    def test_subsumption_flag(self, program_file, capsys):
        main_analyze([program_file, "nrev(glist, var)", "--subsumption"])
        assert "nrev/2" in capsys.readouterr().out


class TestJsonAndUndefinedFlags:
    def test_json_flag(self, program_file, capsys):
        import json

        main_analyze([program_file, "nrev(glist, var)", "--json"])
        data = json.loads(capsys.readouterr().out)
        assert data["predicates"]["nrev/2"]["modes"] == ["+g", "-"]

    def test_on_undefined_flag(self, tmp_path, capsys):
        path = tmp_path / "partial.pl"
        path.write_text("main :- missing(X), p(X). p(_).")
        main_analyze([str(path), "main", "--on-undefined", "top"])
        assert "missing/1" in capsys.readouterr().out


class TestLintCli:
    def test_clean_program_exits_zero(self, program_file, capsys):
        assert main_lint([program_file, "nrev(glist, var)"]) == 0
        assert "% lint: clean" in capsys.readouterr().out

    def test_warnings_only_exit_zero(self, tmp_path, capsys):
        path = tmp_path / "warn.pl"
        path.write_text("main :- p(Extra), p(_).\np(a).\norphan(b).\n")
        assert main_lint([str(path), "main"]) == 0
        out = capsys.readouterr().out
        assert "W002" in out and "'Extra'" in out
        assert "W003" in out and "orphan/1" in out
        assert "error" not in out

    def test_errors_exit_one(self, tmp_path, capsys):
        path = tmp_path / "bad.pl"
        path.write_text("bad(X) :- Y is X + Z, p(Y, Z).\np(_, _).\n")
        assert main_lint([str(path), "bad(var)"]) == 1
        out = capsys.readouterr().out
        assert "E006" in out
        assert "error" in out

    def test_golden_text_format(self, tmp_path, capsys):
        path = tmp_path / "single.pl"
        path.write_text("main :- p(Extra), p(_).\np(a).\n")
        main_lint([str(path), "main"])
        out = capsys.readouterr().out
        assert (
            f"{path}:1:1: warning: W002: singleton variable 'Extra' "
            "(prefix with _ if intentional) [main/0]" in out
        )
        assert "% lint: 1 warning" in out

    def test_json_flag(self, tmp_path, capsys):
        import json

        path = tmp_path / "warn.pl"
        path.write_text("main :- p(Extra), p(_).\np(a).\n")
        assert main_lint([str(path), "main", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["has_errors"] is False
        assert data["counts"]["warning"] == 1
        (diagnostic,) = data["diagnostics"]
        assert diagnostic["code"] == "W002"
        assert diagnostic["line"] == 1
        assert diagnostic["predicate"] == "main/0"

    def test_syntax_error_exit_one(self, tmp_path, capsys):
        path = tmp_path / "broken.pl"
        path.write_text("p(a.\n")
        assert main_lint([str(path), "p(g)"]) == 1
        assert "E001" in capsys.readouterr().out

    def test_no_source_flag(self, tmp_path, capsys):
        path = tmp_path / "warn.pl"
        path.write_text("main :- p(Extra), p(_).\np(a).\n")
        main_lint([str(path), "main", "--no-source"])
        assert "% lint: clean" in capsys.readouterr().out

    def test_no_verify_flag(self, program_file, capsys):
        assert main_lint([program_file, "nrev(glist, var)", "--no-verify"]) == 0
        assert "% lint: clean" in capsys.readouterr().out

    def test_analyze_lint_flag(self, tmp_path, capsys):
        path = tmp_path / "warn.pl"
        path.write_text("main :- p(Extra), p(_).\np(a).\n")
        main_analyze([str(path), "main", "--lint"])
        out = capsys.readouterr().out
        assert "main/0" in out  # the analysis report
        assert "W002" in out  # the appended lint report
        assert "% lint: 1 warning" in out


class TestCliHardening:
    """Library/I-O failures exit 2 with one line on stderr, never a
    traceback."""

    def test_analyze_missing_file(self, capsys):
        assert main_analyze(["/nonexistent/prog.pl", "main"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro-analyze: error:")
        assert err.count("\n") == 1

    def test_lint_missing_file(self, capsys):
        assert main_lint(["/nonexistent/prog.pl", "main"]) == 2
        assert capsys.readouterr().err.startswith("repro-lint: error:")

    def test_prolog_missing_file(self, capsys):
        assert main_prolog(["/nonexistent/prog.pl", "main"]) == 2
        assert capsys.readouterr().err.startswith("repro-prolog: error:")

    def test_analyze_bad_entry_pattern(self, program_file, capsys):
        assert main_analyze([program_file, "nrev(bogus_mode, var)"]) == 2
        assert "repro-analyze: error:" in capsys.readouterr().err

    def test_prolog_syntax_error(self, tmp_path, capsys):
        path = tmp_path / "broken.pl"
        path.write_text("p(.\n")
        assert main_prolog([str(path), "p(X)"]) == 2
        assert "repro-prolog: error:" in capsys.readouterr().err


class TestCliBudgets:
    def test_analyze_degrades_by_default(self, program_file, capsys):
        code = main_analyze([program_file, "nrev(glist, var)", "--max-steps", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "% status: degraded" in out

    def test_analyze_on_budget_raise(self, program_file, capsys):
        code = main_analyze(
            [program_file, "nrev(glist, var)", "--max-steps", "5",
             "--on-budget", "raise"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "repro-analyze: error:" in err
        assert "step budget" in err

    def test_analyze_exact_unaffected_by_loose_budget(
        self, program_file, capsys
    ):
        assert main_analyze(
            [program_file, "nrev(glist, var)", "--max-steps", "1000000"]
        ) == 0
        out = capsys.readouterr().out
        assert "status: degraded" not in out
        assert "nrev/2" in out

    def test_analyze_json_reports_status(self, program_file, capsys):
        import json

        main_analyze(
            [program_file, "nrev(glist, var)", "--max-steps", "5", "--json"]
        )
        data = json.loads(capsys.readouterr().out)
        assert data["status"] == "degraded"
        assert data["entry_reports"][0]["status"] == "degraded"
        assert data["entry_reports"][0]["reason"]

    def test_analyze_max_iterations_degrades(self, program_file, capsys):
        assert main_analyze(
            [program_file, "nrev(glist, var)", "--max-iterations", "1"]
        ) == 0
        assert "% status: degraded" in capsys.readouterr().out

    def test_lint_budget_emits_i001_and_mutes(self, program_file, capsys):
        assert main_lint(
            [program_file, "nrev(glist, var)", "--max-steps", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "I001" in out
        assert "muted" in out

    def test_prolog_step_budget_trips(self, program_file, capsys):
        code = main_prolog(
            [program_file, "nrev([1,2,3,4,5,6,7,8], R)", "--max-steps", "10"]
        )
        assert code == 2
        assert "repro-prolog: error:" in capsys.readouterr().err

    def test_prolog_generous_budget_succeeds(self, program_file, capsys):
        assert main_prolog(
            [program_file, "nrev([1,2], R)", "--max-steps", "100000",
             "--deadline", "60"]
        ) == 0
        assert "R = [2, 1]" in capsys.readouterr().out

    def test_prolog_solver_budget(self, program_file, capsys):
        code = main_prolog(
            [program_file, "nrev([1,2], R)", "--engine", "solver",
             "--deadline", "60"]
        )
        assert code == 0
        assert "R = [2, 1]" in capsys.readouterr().out


class TestServeCli:
    """repro-serve: batch mode, the stdin loop, deterministic JSON."""

    def test_batch_two_passes_hits(self, program_file, capsys):
        from repro.cli import main_serve

        assert main_serve(
            [program_file, "--batch", "--entry", "nrev(glist, var)"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        summary = json.loads(lines[-1])
        assert summary["passes"][0]["miss"] == 1
        assert summary["passes"][1]["hit"] == 1

    def test_batch_missing_file_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main_serve

        code = main_serve(
            [str(tmp_path / "nope.pl"), "--batch", "--entry", "main"]
        )
        capsys.readouterr()
        assert code == 1

    def test_stdin_loop(self, program_file, capsys, monkeypatch):
        import io

        from repro.cli import main_serve

        request = json.dumps({
            "op": "analyze", "file": program_file,
            "entries": ["nrev(glist, var)"],
        })
        monkeypatch.setattr(
            "sys.stdin", io.StringIO(request + "\n" + '{"op": "shutdown"}\n')
        )
        assert main_serve([]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        first = json.loads(lines[0])
        assert first["ok"] and first["result"]["status"] == "exact"

    def test_analyze_json_is_deterministic(self, program_file, capsys):
        """--json output is byte-identical across runs, modulo timing."""
        outputs = []
        for _ in range(2):
            assert main_analyze(
                [program_file, "nrev(glist, var)", "--json"]
            ) == 0
            data = json.loads(capsys.readouterr().out)
            for key in ("seconds", "iterations", "instructions_executed"):
                data.pop(key)
            outputs.append(json.dumps(data, sort_keys=True))
        assert outputs[0] == outputs[1]

    def test_lint_json_is_deterministic(self, program_file, capsys):
        outputs = []
        for _ in range(2):
            main_lint([program_file, "nrev(glist, var)", "--json"])
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]
        # keys are sorted at every level
        report = json.loads(outputs[0])
        assert list(report) == sorted(report)
