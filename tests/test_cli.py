"""Tests for the command line entry points."""

import pytest

from repro.cli import main_analyze, main_prolog
from tests.conftest import APPEND_NREV


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.pl"
    path.write_text(APPEND_NREV)
    return str(path)


class TestAnalyzeCli:
    def test_basic(self, program_file, capsys):
        assert main_analyze([program_file, "nrev(glist, var)"]) == 0
        out = capsys.readouterr().out
        assert "nrev/2" in out

    def test_table_flag(self, program_file, capsys):
        main_analyze([program_file, "nrev(glist, var)", "--table"])
        out = capsys.readouterr().out
        assert "->" in out

    def test_depth_flag(self, program_file, capsys):
        main_analyze([program_file, "nrev(glist, var)", "--depth", "2"])
        assert "depth 2" in capsys.readouterr().out

    def test_multiple_entries(self, program_file, capsys):
        main_analyze([program_file, "nrev(glist, var)", "app(var, var, glist)"])
        assert "app/3" in capsys.readouterr().out


class TestPrologCli:
    def test_run_query(self, program_file, capsys):
        assert main_prolog([program_file, "nrev([1,2,3], R)"]) == 0
        assert "R = [3, 2, 1]" in capsys.readouterr().out

    def test_failure_exit_code(self, program_file, capsys):
        assert main_prolog([program_file, "nrev(abc, R)"]) == 1
        assert "false" in capsys.readouterr().out

    def test_all_solutions(self, program_file, capsys):
        main_prolog([program_file, "app(X, Y, [1, 2])", "--all"])
        out = capsys.readouterr().out
        assert out.count("X =") == 3

    def test_solver_engine(self, program_file, capsys):
        main_prolog([program_file, "nrev([1,2], R)", "--engine", "solver"])
        assert "R = [2, 1]" in capsys.readouterr().out

    def test_listing(self, program_file, capsys):
        main_prolog([program_file, "--listing"])
        out = capsys.readouterr().out
        assert "nrev/2:" in out

    def test_zero_arity_goal(self, tmp_path, capsys):
        path = tmp_path / "hello.pl"
        path.write_text("main :- write(hello), nl.")
        main_prolog([str(path), "main"])
        out = capsys.readouterr().out
        assert "true" in out
        assert "hello" in out

    def test_library_flag(self, tmp_path, capsys):
        path = tmp_path / "uses_lib.pl"
        path.write_text("go(R) :- append([1], [2], R).")
        main_prolog([str(path), "go(R)", "--library"])
        assert "R = [1, 2]" in capsys.readouterr().out


class TestAnalyzeClientFlags:
    def test_parallel_flag(self, tmp_path, capsys):
        path = tmp_path / "par.pl"
        path.write_text("main :- p(X), q(X). p(1). q(_).")
        main_analyze([str(path), "main", "--parallel"])
        out = capsys.readouterr().out
        assert "and-parallelism" in out
        assert "ground(X)" in out

    def test_deadcode_flag(self, tmp_path, capsys):
        path = tmp_path / "dead.pl"
        path.write_text("main :- p. p. orphan.")
        main_analyze([str(path), "main", "--deadcode"])
        assert "unreachable: orphan/0" in capsys.readouterr().out

    def test_specialize_flag(self, program_file, capsys):
        main_analyze([program_file, "nrev(glist, var)", "--specialize"])
        assert "specialization" in capsys.readouterr().out

    def test_subsumption_flag(self, program_file, capsys):
        main_analyze([program_file, "nrev(glist, var)", "--subsumption"])
        assert "nrev/2" in capsys.readouterr().out


class TestJsonAndUndefinedFlags:
    def test_json_flag(self, program_file, capsys):
        import json

        main_analyze([program_file, "nrev(glist, var)", "--json"])
        data = json.loads(capsys.readouterr().out)
        assert data["predicates"]["nrev/2"]["modes"] == ["+g", "-"]

    def test_on_undefined_flag(self, tmp_path, capsys):
        path = tmp_path / "partial.pl"
        path.write_text("main :- missing(X), p(X). p(_).")
        main_analyze([str(path), "main", "--on-undefined", "top"])
        assert "missing/1" in capsys.readouterr().out
