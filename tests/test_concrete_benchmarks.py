"""The benchmark programs run correctly on the concrete WAM.

Each benchmark's ``test_goal`` is executed on both the compiled WAM and
the SLD solver; answers must agree, validating the compiler end to end on
realistic programs.
"""

import pytest

from repro.bench import BENCHMARKS, get_benchmark
from repro.prolog import Program, Solver, parse_term, term_to_text
from repro.wam import Machine, compile_program

#: Benchmarks whose full main/0 goal is cheap enough to run concretely.
FAST_MAINS = ["log10", "ops8", "nreverse", "qsort", "serialise", "query"]


@pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
def test_test_goal_on_wam(bench):
    machine = Machine(compile_program(Program.from_text(bench.source)))
    solution = machine.run_once(parse_term(bench.test_goal))
    assert solution is not None
    if bench.test_expect is not None:
        name, expected = bench.test_expect
        assert term_to_text(solution[name]) == expected


@pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
def test_test_goal_wam_agrees_with_solver(bench):
    machine = Machine(compile_program(Program.from_text(bench.source)))
    wam_solution = machine.run_once(parse_term(bench.test_goal))
    solver = Solver(Program.from_text(bench.source))
    solver_solution = solver.solve_once(parse_term(bench.test_goal))
    assert (wam_solution is None) == (solver_solution is None)
    if bench.test_expect is not None and wam_solution is not None:
        name, _ = bench.test_expect
        assert term_to_text(wam_solution[name]) == term_to_text(
            solver_solution[name]
        )


@pytest.mark.parametrize("name", FAST_MAINS)
def test_full_main_goal_runs(name):
    bench = get_benchmark(name)
    machine = Machine(compile_program(Program.from_text(bench.source)))
    assert machine.run_once(parse_term(bench.goal)) is not None


def test_queens_four_has_two_solutions():
    bench = get_benchmark("queens_8")
    machine = Machine(compile_program(Program.from_text(bench.source)))
    solutions = list(machine.run(parse_term("queens(4, Qs)")))
    assert len(solutions) == 2
    boards = {term_to_text(s["Qs"]) for s in solutions}
    assert boards == {"[3, 1, 4, 2]", "[2, 4, 1, 3]"}


def test_tak_value():
    bench = get_benchmark("tak")
    machine = Machine(compile_program(Program.from_text(bench.source)))
    solution = machine.run_once(parse_term("tak(12, 8, 4, A)"))
    assert term_to_text(solution["A"]) == "5"


def test_deriv_times_shape():
    bench = get_benchmark("times10")
    machine = Machine(compile_program(Program.from_text(bench.source)))
    solution = machine.run_once(parse_term("d((x * x) * x, x, D)"))
    text = term_to_text(solution["D"])
    assert text == "(1 * x + x * 1) * x + x * x * 1"


def test_serialise_full_answer():
    bench = get_benchmark("serialise")
    machine = Machine(compile_program(Program.from_text(bench.source)))
    solution = machine.run_once(parse_term('serialise("ABLE", R)'))
    # A=1, B=2, E=3, L=4 -> "ABLE" -> [1, 2, 4, 3]
    assert term_to_text(solution["R"]) == "[1, 2, 4, 3]"


def test_query_densities():
    bench = get_benchmark("query")
    machine = Machine(compile_program(Program.from_text(bench.source)))
    solutions = list(machine.run(parse_term("query(Q)")))
    assert len(solutions) > 0
    # Every answer satisfies the paper's population-density criterion.
    for solution in solutions:
        parts = term_to_text(solution["Q"])
        assert parts.startswith("[")
