"""Tests for the compiled extension-table control scheme (paper Section 5,
Figure 5): call consults the table, proceed updates it and fails onward,
exhausted clauses return the summarized success pattern."""

from repro.analysis import AbstractMachine, Analyzer
from repro.analysis.driver import parse_entry_spec
from repro.prolog import Program
from repro.wam import compile_program


def machine_for(text):
    return AbstractMachine(compile_program(Program.from_text(text)))


class TestMemoization:
    def test_second_call_uses_table(self):
        # q is called twice with the same pattern; the clause bodies of q
        # must be explored once per iteration.
        text = """
        main :- q(X), q(Y).
        q(1).
        """
        machine = machine_for(text)
        spec = parse_entry_spec("main")
        machine.run_pattern(spec.indicator, spec.pattern)
        entries = machine.table.entries_for(("q", 1))
        assert len(entries) == 1
        # One exploration mark, one success: updates == 1 in the pass.
        assert entries[0].updates == 1

    def test_different_patterns_get_entries(self):
        text = """
        main :- p(a), p(X).
        p(_).
        """
        machine = machine_for(text)
        spec = parse_entry_spec("main")
        machine.run_pattern(spec.indicator, spec.pattern)
        assert len(machine.table.entries_for(("p", 1))) == 2

    def test_recursive_call_fails_first_iteration(self):
        # With no base case, the recursive call finds its own open pattern
        # and fails: the predicate has no success pattern at all.
        machine = machine_for("p(X) :- p(X).")
        spec = parse_entry_spec("p(var)")
        machine.run_pattern(spec.indicator, spec.pattern)
        entry = machine.table.entries_for(("p", 1))[0]
        assert entry.success is None

    def test_all_clauses_explored_per_pattern(self):
        text = """
        p(1).
        p(a).
        p([]).
        """
        machine = machine_for(text)
        spec = parse_entry_spec("p(var)")
        machine.run_pattern(spec.indicator, spec.pattern)
        entry = machine.table.entries_for(("p", 1))[0]
        # Three clause successes were lubbed in (three real updates).
        assert entry.updates >= 2
        assert entry.success is not None


class TestIterativeDeepening:
    def test_recursion_needs_multiple_iterations(self, append_nrev):
        analyzer = Analyzer(append_nrev)
        result = analyzer.analyze(["nrev(glist, var)"])
        assert result.iterations >= 2

    def test_nonrecursive_converges_fast(self):
        analyzer = Analyzer("p(a). p(b).")
        result = analyzer.analyze(["p(var)"])
        assert result.iterations == 2  # second pass confirms no change

    def test_success_patterns_monotone_across_iterations(self):
        # The summarized success can only grow; here it grows from the
        # base case to include the recursive case's contribution.
        text = """
        t(leaf).
        t(n(L)) :- t(L).
        build(X) :- t(X).
        """
        result = Analyzer(text).analyze(["build(var)"])
        from repro.domain import tree_leq, ATOM_T

        success = result.success_types(("build", 1))[0]
        assert tree_leq(ATOM_T, success)


class TestDeterministicReturn:
    def test_lubbed_single_return(self):
        # Multiple clause successes return as ONE summarized pattern:
        # caller sees const, not separate atom/int alternatives.
        text = """
        main(X) :- pick(X), check(X).
        pick(a). pick(1).
        check(_).
        """
        result = Analyzer(text).analyze(["main(var)"])
        entries = result.table.entries_for(("check", 1))
        assert len(entries) == 1
        from repro.domain import tree_to_text
        from repro.analysis.patterns import pattern_to_trees

        assert tree_to_text(pattern_to_trees(entries[0].calling)[0]) == "const"

    def test_incompatible_success_fails_caller(self):
        # p succeeds only with an atom; the caller demands an integer
        # after return, so main can never succeed.
        text = """
        main :- p(X), integer(X).
        p(a).
        """
        result = Analyzer(text).analyze(["main"])
        assert not result.predicate(("main", 0)).can_succeed
