"""Cross-validation: two independent analyzer implementations must compute
identical fixpoint tables on the whole benchmark suite.

The abstract WAM (compiled, destructive heap, trailing) and the Python
meta-interpreter (AST, copy-on-branch store) share only the domain
definitions; identical tables on 11 realistic programs is strong evidence
both implement the same analysis.
"""

import pytest

from repro.analysis import Analyzer
from repro.baselines import MetaAnalyzer
from repro.bench import BENCHMARKS


def table_map(table):
    return {
        (indicator, entry.calling): entry.success
        for indicator, entry in table.all_entries()
    }


@pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
def test_meta_matches_abstract_wam(bench):
    fast = Analyzer(bench.source).analyze([bench.entry])
    meta = MetaAnalyzer(bench.source).analyze([bench.entry])
    assert table_map(fast.table) == table_map(meta.table)


@pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
def test_same_iteration_count(bench):
    fast = Analyzer(bench.source).analyze([bench.entry])
    meta = MetaAnalyzer(bench.source).analyze([bench.entry])
    assert fast.iterations == meta.iterations


def test_indexing_does_not_change_analysis():
    from repro.wam import CompilerOptions

    for bench in BENCHMARKS[:4]:
        plain = Analyzer(
            bench.source, options=CompilerOptions(indexing=False)
        ).analyze([bench.entry])
        indexed = Analyzer(
            bench.source, options=CompilerOptions(indexing=True)
        ).analyze([bench.entry])
        assert table_map(plain.table) == table_map(indexed.table)


def test_trimming_does_not_change_analysis():
    from repro.wam import CompilerOptions

    for bench in BENCHMARKS[:4]:
        off = Analyzer(
            bench.source, options=CompilerOptions(environment_trimming=False)
        ).analyze([bench.entry])
        on = Analyzer(
            bench.source, options=CompilerOptions(environment_trimming=True)
        ).analyze([bench.entry])
        assert table_map(off.table) == table_map(on.table)
