"""Tests for the intra-predicate dataflow framework (repro.lint.dataflow).

The CFG and solver tests run on *hand-built* code areas — adversarial
shapes the compiler never emits (unreachable blocks, loops through
switch tables, merge points with conflicting states) — because the
framework must be correct on anything the optimizer might construct,
not just on compiler output.
"""

import pytest

from repro.analysis import Analyzer
from repro.lint.dataflow import (
    FAIL_TARGET,
    KILL_ALL,
    build_cfg,
    determinacy,
    predicate_regions,
    solve_backward,
    solve_forward,
    x_liveness,
    x_uses_defs,
)
from repro.prolog.terms import Atom
from repro.wam import instructions as ins
from repro.wam.code import CodeArea, PredicateCode
from repro.wam.instructions import xreg, yreg


def area(indicator, instructions):
    """Link one hand-written predicate into a fresh code area."""
    code = CodeArea()
    code.link([PredicateCode(indicator, list(instructions), 1, [])])
    return code


def cfg_for(indicator, instructions):
    code = area(indicator, instructions)
    return build_cfg(code, indicator, 0, len(code))


class TestControlFlowGraph:
    def test_straight_line(self):
        cfg = cfg_for(("p", 1), [
            ins.get_nil(1),          # 0
            ins.proceed(),           # 1
        ])
        assert [e.target for e in cfg.successors(0)] == [1]
        assert not cfg.successors(0)[0].fresh
        assert cfg.successors(1) == []  # terminal
        assert not cfg.escapes and not cfg.falls_off

    def test_try_me_else_edges_are_fresh(self):
        cfg = cfg_for(("p", 1), [
            ins.try_me_else(2),      # 0
            ins.proceed(),           # 1
            ins.trust_me(),          # 2
            ins.proceed(),           # 3
        ])
        edges = {(e.target, e.fresh) for e in cfg.successors(0)}
        # The alternative is a backtracking restart (fresh); the
        # fall-through into the first clause carries the entry state.
        assert edges == {(2, True), (1, False)}

    def test_try_fall_through_is_fresh(self):
        cfg = cfg_for(("p", 1), [
            ins.try_clause(2),       # 0
            ins.retry_clause(3),     # 1
            ins.proceed(),           # 2
            ins.proceed(),           # 3
        ])
        assert {(e.target, e.fresh) for e in cfg.successors(0)} == {
            (2, True), (1, True),
        }
        assert {(e.target, e.fresh) for e in cfg.successors(1)} == {
            (3, True), (2, True),
        }

    def test_escaping_branch_recorded_not_edged(self):
        cfg = cfg_for(("p", 1), [
            ins.try_me_else(99),     # 0 — target outside the region
            ins.proceed(),           # 1
        ])
        assert [e.target for e in cfg.successors(0)] == [1]
        assert cfg.escapes == {0: [99]}

    def test_fall_off_the_end(self):
        cfg = cfg_for(("p", 1), [
            ins.get_nil(1),          # 0 — non-terminal last instruction
        ])
        assert cfg.falls_off == {0}
        assert cfg.successors(0) == []

    def test_switch_on_term_skips_fail_targets(self):
        cfg = cfg_for(("p", 1), [
            ins.switch_on_term(1, 2, FAIL_TARGET, FAIL_TARGET),  # 0
            ins.proceed(),                                       # 1
            ins.proceed(),                                       # 2
        ])
        assert sorted(e.target for e in cfg.successors(0)) == [1, 2]

    def test_switch_table_default_is_an_edge(self):
        cfg = cfg_for(("p", 1), [
            ins.switch_on_constant({Atom("a"): 1}, default=2),   # 0
            ins.proceed(),                                       # 1
            ins.proceed(),                                       # 2
        ])
        assert sorted(e.target for e in cfg.successors(0)) == [1, 2]
        # Without a default, the miss target is fail: no edge.
        cfg = cfg_for(("p", 1), [
            ins.switch_on_constant({Atom("a"): 1}),              # 0
            ins.proceed(),                                       # 1
        ])
        assert [e.target for e in cfg.successors(0)] == [1]

    def test_unreachable_block(self):
        cfg = cfg_for(("p", 1), [
            ins.execute(("q", 1)),   # 0 — terminal
            ins.get_nil(1),          # 1 — dead
            ins.proceed(),           # 2 — dead
        ])
        assert cfg.reachable() == {0}

    def test_basic_blocks_on_a_diamond(self):
        cfg = cfg_for(("p", 1), [
            ins.switch_on_term(1, 3, FAIL_TARGET, FAIL_TARGET),  # 0
            ins.get_nil(1),                                      # 1
            ins.switch_on_term(5, 5, 5, 5),                      # 2
            ins.get_constant(Atom("a"), 1),                      # 3
            ins.switch_on_term(5, 5, 5, 5),                      # 4
            ins.proceed(),                                       # 5
        ])
        assert cfg.basic_blocks() == [(0, 1), (1, 3), (3, 5), (5, 6)]

    def test_back_edge_through_switch(self):
        # A loop the compiler never emits: the dataflow framework must
        # still terminate and classify the edge as a back edge.
        cfg = cfg_for(("p", 1), [
            ins.get_nil(1),                                      # 0
            ins.switch_on_term(0, 2, FAIL_TARGET, FAIL_TARGET),  # 1
            ins.proceed(),                                       # 2
        ])
        back = cfg.back_edges()
        assert [(e.source, e.target) for e in back] == [(1, 0)]

    def test_predicate_regions_partition_the_area(self):
        analyzer = Analyzer("p(a).\nq(X) :- p(X).\nmain :- q(a).\n")
        code = analyzer.compiled.code
        regions = predicate_regions(code)
        starts = [start for _, start, _ in regions]
        ends = [end for _, _, end in regions]
        assert starts == sorted(starts)
        assert starts[1:] == ends[:-1] and ends[-1] == len(code)
        assert {indicator for indicator, _, _ in regions} >= {
            ("p", 1), ("q", 1), ("main", 0),
        }


class TestSolvers:
    def test_forward_fresh_edges_reenter_with_entry_state(self):
        cfg = cfg_for(("p", 1), [
            ins.try_me_else(2),      # 0
            ins.proceed(),           # 1
            ins.trust_me(),          # 2
            ins.proceed(),           # 3
        ])
        states = solve_forward(
            cfg,
            entry_state=frozenset(),
            transfer=lambda addr, instr, state: state | {addr},
            merge=lambda old, new: (old | new, None),
        )
        # Clause 1 sees the try_me_else in its past; the alternative
        # does NOT — backtracking restored the registers.
        assert states[1] == frozenset({0})
        assert states[2] == frozenset()

    def test_forward_reports_merge_conflicts(self):
        cfg = cfg_for(("p", 1), [
            ins.switch_on_term(1, 3, FAIL_TARGET, FAIL_TARGET),  # 0
            ins.get_nil(1),                                      # 1
            ins.switch_on_term(5, 5, 5, 5),                      # 2
            ins.get_constant(Atom("a"), 1),                      # 3
            ins.switch_on_term(5, 5, 5, 5),                      # 4
            ins.proceed(),                                       # 5
        ])
        conflicts = []
        solve_forward(
            cfg,
            entry_state="entry",
            transfer=lambda addr, instr, state:
                instr.op if instr.op.startswith("get_") else state,
            merge=lambda old, new:
                (old, None) if old == new else (old, (old, new)),
            on_merge_conflict=lambda addr, conflict:
                conflicts.append((addr, conflict)),
        )
        # The two arms reach 5 with different states exactly once each
        # way; the join must surface the disagreement.
        assert any(addr == 5 for addr, _ in conflicts)

    def test_forward_transfer_none_stops_propagation(self):
        cfg = cfg_for(("p", 1), [
            ins.get_nil(1),          # 0
            ins.proceed(),           # 1
        ])
        states = solve_forward(
            cfg,
            entry_state=0,
            transfer=lambda addr, instr, state: None,
            merge=lambda old, new: (old, None),
        )
        assert 1 not in states  # nothing flowed past address 0

    def test_backward_fresh_successors_contribute_nothing(self):
        cfg = cfg_for(("p", 2), [
            ins.try_clause(2),       # 0: both successors fresh
            ins.trust_clause(3),     # 1
            ins.proceed(),           # 2
            ins.proceed(),           # 3
        ])
        ins_states, outs = solve_backward(
            cfg,
            exit_state=frozenset(),
            transfer=lambda addr, instr, out: out | {addr},
            merge=lambda a, b: a | b,
        )
        # Every successor of 0 is fresh, so its out-state is the exit
        # state — nothing the restarted alternatives do flows back.
        assert outs[0] == frozenset()
        assert ins_states[0] == frozenset({0})


class TestXLiveness:
    def test_dead_move_is_not_live(self):
        cfg = cfg_for(("p", 1), [
            ins.get_variable(xreg(3), 1),   # 0: X3 := A1, never read
            ins.proceed(),                  # 1
        ])
        result = x_liveness(cfg)
        assert 3 not in result.live_out[0]
        assert 1 in result.live_in[0]  # A1 is read by the move itself

    def test_used_move_is_live(self):
        cfg = cfg_for(("p", 1), [
            ins.get_variable(xreg(3), 1),   # 0
            ins.put_value(xreg(3), 1),      # 1: reads X3
            ins.execute(("q", 1)),          # 2
        ])
        result = x_liveness(cfg)
        assert 3 in result.live_out[0]

    def test_indexing_keeps_arguments_live(self):
        cfg = cfg_for(("p", 2), [
            ins.try_me_else(2),             # 0: snapshots A1..A2
            ins.proceed(),                  # 1
            ins.trust_me(),                 # 2
            ins.proceed(),                  # 3
        ])
        result = x_liveness(cfg)
        assert {1, 2} <= result.live_in[0]

    def test_call_kills_everything(self):
        uses, defs = x_uses_defs(ins.call(("q", 2), 0), arity=3)
        assert uses == {1, 2}
        assert defs == KILL_ALL

    def test_y_registers_are_invisible(self):
        uses, defs = x_uses_defs(ins.get_variable(yreg(2), 1), arity=1)
        assert uses == {1} and defs == set()


class TestDeterminacy:
    def _facts(self, source, entry):
        analyzer = Analyzer(source)
        result = analyzer.analyze([entry])
        return determinacy(analyzer.compiled, result)

    def test_ground_selector_distinct_keys(self):
        facts = self._facts(
            "p(a, 1).\np(b, 2).\nmain :- p(a, X).\n", "main"
        )
        info = facts[("p", 2)]
        assert info.selector_class == "ground"
        assert info.keys_distinct
        assert info.deterministic

    def test_var_selector_is_not_deterministic(self):
        facts = self._facts(
            "p(a, 1).\np(b, 2).\nmain :- p(X, 1).\n", "main"
        )
        assert not facts[("p", 2)].deterministic

    def test_variable_keyed_clause_defeats_distinctness(self):
        facts = self._facts(
            "p(a).\np(X).\nmain :- p(a).\n", "main"
        )
        info = facts[("p", 1)]
        assert not info.keys_distinct
        assert not info.deterministic

    def test_duplicate_keys_defeat_distinctness(self):
        facts = self._facts(
            "p(a, 1).\np(a, 2).\nmain :- p(a, X).\n", "main"
        )
        assert not facts[("p", 2)].deterministic
