"""Tests for DCG translation."""

import pytest

from repro.errors import PrologSyntaxError
from repro.prolog import Program, parse_term, term_to_text
from repro.prolog.dcg import translate_dcg
from repro.wam import Machine, compile_program
from tests.conftest import solve_texts, wam_texts

GRAMMAR = """
greeting --> [hello], who.
who --> [world].
who --> [prolog].

digits([D|T]) --> digit(D), digits(T).
digits([D]) --> digit(D).
digit(0'0) --> "0".
digit(0'1) --> "1".

ab --> [].
ab --> [a], ab, [b].
"""


class TestTranslation:
    def test_nonterminal_gains_two_args(self):
        clause = translate_dcg(parse_term("s --> np, vp"))
        assert clause.indicator == ("s", 2)
        assert [g.indicator for g in clause.body] == [("np", 2), ("vp", 2)]

    def test_terminal_list(self):
        clause = translate_dcg(parse_term("d --> [the]"))
        assert clause.body[0].name == "="
        assert "the" in term_to_text(clause.body[0])

    def test_empty_body(self):
        clause = translate_dcg(parse_term("e --> []"))
        goal = clause.body[0]
        assert goal.name == "="

    def test_curly_goal_does_not_consume(self):
        clause = translate_dcg(parse_term("n(X) --> [a], {X is 1 + 1}"))
        names = [g.name for g in clause.body]
        assert "is" in names

    def test_cut_preserved(self):
        clause = translate_dcg(parse_term("c --> [x], !, [y]"))
        assert any(term_to_text(g) == "!" for g in clause.body)

    def test_threading_order(self):
        clause = translate_dcg(parse_term("s --> a, b, c"))
        # a: S0->X, b: X->Y, c: Y->S.
        first, second, third = clause.body
        assert first.args[1] is second.args[0]
        assert second.args[1] is third.args[0]

    def test_not_a_rule_rejected(self):
        with pytest.raises(PrologSyntaxError):
            translate_dcg(parse_term("p :- q"))

    def test_variable_body_rejected(self):
        with pytest.raises(PrologSyntaxError):
            translate_dcg(parse_term("p --> X"))

    def test_pushback(self):
        clause = translate_dcg(parse_term("h, [t] --> [x]"))
        assert clause.indicator == ("h", 2)


class TestExecution:
    def test_recognize(self):
        assert wam_texts(GRAMMAR, "greeting([hello, world], [])") == [{}]
        assert wam_texts(GRAMMAR, "greeting([hello, mars], [])") == []

    def test_enumerate(self):
        solutions = wam_texts(GRAMMAR, "greeting(L, [])")
        assert len(solutions) == 2

    def test_string_terminals(self):
        assert wam_texts(GRAMMAR, 'digits(D, "101", [])') == [
            {"D": "[49, 48, 49]"}
        ]

    def test_recursive_grammar(self):
        assert wam_texts(GRAMMAR, "ab([a, a, b, b], [])") == [{}]
        assert wam_texts(GRAMMAR, "ab([a, b, b], [])") == []

    def test_solver_agrees(self):
        for goal in ["greeting([hello, prolog], [])", "ab([a, b], [])"]:
            assert (wam_texts(GRAMMAR, goal) == []) == (
                solve_texts(GRAMMAR, goal) == []
            )

    def test_remainder_threading(self):
        solutions = wam_texts(GRAMMAR, "greeting([hello, world, extra], R)")
        assert solutions == [{"R": "[extra]"}]


class TestAnalysisOfGrammars:
    def test_grammar_modes(self):
        from repro.analysis import analyze

        result = analyze(GRAMMAR, "greeting(list(atom), [])")
        modes = result.modes(("who", 2))
        assert modes[0] == "+g"

    def test_grammar_types(self):
        from repro.analysis import analyze
        from repro.domain import tree_to_text

        result = analyze(GRAMMAR, "greeting(list(atom), var)")
        success = result.success_types(("greeting", 2))
        assert tree_to_text(success[0]) == "atom-list"
