"""Tests for dead-code detection."""

from repro.analysis import Analyzer
from repro.optimize import find_dead_code
from repro.prolog import Program


def report_for(text, *entries):
    program = Program.from_text(text)
    result = Analyzer(program).analyze(list(entries))
    return find_dead_code(program, result)


class TestUnreachable:
    def test_never_called_predicate(self):
        report = report_for("main :- p. p. orphan.", "main")
        assert ("orphan", 0) in report.unreachable_predicates

    def test_called_predicates_not_flagged(self):
        report = report_for("main :- p. p.", "main")
        assert report.unreachable_predicates == []


class TestDeadClauses:
    def test_clause_with_unmatched_key(self):
        text = """
        main :- d(f(1)).
        d(f(_)).
        d(g(_)).
        """
        report = report_for(text, "main")
        dead = [(ind, idx) for ind, idx, _ in report.dead_clauses]
        assert (("d", 1), 1) in dead

    def test_constant_mismatch(self):
        # The domain has no singleton constants (paper §3): 'a' abstracts
        # to atom, so p(b) still matches; only the integer clause is dead.
        text = "main :- p(a). p(a). p(b). p(1)."
        report = report_for(text, "main")
        dead_indexes = {idx for _, idx, _ in report.dead_clauses}
        assert dead_indexes == {2}

    def test_general_pattern_keeps_all_clauses(self):
        report = report_for("main(X) :- p(X). p(a). p(b).", "main(any)")
        assert report.dead_clauses == []

    def test_var_heads_never_dead(self):
        report = report_for("main :- p(1). p(_). p(X).", "main")
        assert report.dead_clauses == []

    def test_list_pattern(self):
        text = "main(L) :- q(L). q([]). q([_|_]). q(f(_))."
        report = report_for(text, "main(glist)")
        dead = [idx for _, idx, _ in report.dead_clauses]
        assert dead == [2]  # the f/1 clause cannot match a list


class TestFailing:
    def test_failing_predicate_flagged(self):
        report = report_for("main :- w(3). w(X) :- atom(X).", "main")
        assert ("w", 1) in report.failing_predicates
        assert ("main", 0) in report.failing_predicates

    def test_succeeding_not_flagged(self):
        report = report_for("main :- p. p.", "main")
        assert report.failing_predicates == []


class TestReport:
    def test_clean_report(self):
        report = report_for("main :- p(1). p(_).", "main")
        assert report.is_clean
        assert "no dead code" in report.to_text()

    def test_report_text(self):
        report = report_for("main :- p. p. orphan.", "main")
        assert "unreachable: orphan/0" in report.to_text()

    def test_benchmarks_are_clean_modulo_drivers(self):
        from repro.bench import BENCHMARKS

        for bench in BENCHMARKS[:5]:
            program = Program.from_text(bench.source)
            result = Analyzer(program).analyze([bench.entry])
            report = find_dead_code(program, result)
            # The benchmark programs have no unreachable predicates.
            assert report.unreachable_predicates == []
