"""Tests for abstraction (α) and membership (γ) of concrete terms."""

from repro.domain import (
    ANY_T,
    ATOM_T,
    GROUND_T,
    INTEGER_T,
    NIL_T,
    NV_T,
    VAR_T,
    abstract_term,
    make_list_tree,
    make_struct_tree,
    summary_of_term,
    tree_contains,
)
from repro.prolog import parse_term


class TestAbstraction:
    def test_atom(self):
        assert abstract_term(parse_term("foo")) == ATOM_T

    def test_nil_is_empty_list(self):
        assert abstract_term(parse_term("[]")) == NIL_T

    def test_integer(self):
        assert abstract_term(parse_term("42")) == INTEGER_T

    def test_variable(self):
        assert abstract_term(parse_term("X")) == VAR_T

    def test_ground_list(self):
        assert abstract_term(parse_term("[1, 2, 3]")) == make_list_tree(
            INTEGER_T
        )

    def test_mixed_list(self):
        tree = abstract_term(parse_term("[1, a]"))
        assert tree[0] == "l"

    def test_long_list_stays_list(self):
        # The paper: a 30-element ground list abstracts to glist, not to a
        # depth-truncated cons tower.
        term = parse_term("[" + ", ".join(str(i) for i in range(30)) + "]")
        assert abstract_term(term, depth=4) == make_list_tree(INTEGER_T)

    def test_structure(self):
        assert abstract_term(parse_term("f(a, X)")) == make_struct_tree(
            "f", (ATOM_T, VAR_T)
        )

    def test_depth_restriction(self):
        deep = parse_term("f(g(h(i(j(k)))))")
        tree = abstract_term(deep, depth=2)
        assert tree[0] == "f"
        inner = tree[3][0]
        assert inner[3][0] == GROUND_T

    def test_depth_zero_summary(self):
        assert abstract_term(parse_term("f(X)"), depth=0) == NV_T
        assert abstract_term(parse_term("f(a)"), depth=0) == GROUND_T

    def test_partial_list_keeps_cons(self):
        tree = abstract_term(parse_term("[a | T]"))
        assert tree[0] == "f" and tree[1] == "."

    def test_summary_of_term(self):
        assert summary_of_term(parse_term("X")) == VAR_T
        assert summary_of_term(parse_term("f(a)")) == GROUND_T
        assert summary_of_term(parse_term("f(X)")) == NV_T


class TestMembership:
    def test_alpha_gamma_soundness_samples(self):
        samples = [
            "foo",
            "42",
            "[]",
            "[1, 2]",
            "f(a, g(1))",
            "[a | T]",
            "f(X, [Y])",
        ]
        for text in samples:
            term = parse_term(text)
            assert tree_contains(abstract_term(term), term)

    def test_any_contains_everything(self):
        for text in ["a", "1", "f(X)", "[1 | T]"]:
            assert tree_contains(ANY_T, parse_term(text))

    def test_ground(self):
        assert tree_contains(GROUND_T, parse_term("f(a, [1])"))
        assert not tree_contains(GROUND_T, parse_term("f(X)"))

    def test_list_membership(self):
        glist = make_list_tree(GROUND_T)
        assert tree_contains(glist, parse_term("[]"))
        assert tree_contains(glist, parse_term("[a, 1]"))
        assert not tree_contains(glist, parse_term("[X]"))
        assert not tree_contains(glist, parse_term("[a | T]"))

    def test_struct_membership(self):
        tree = make_struct_tree("f", (INTEGER_T,))
        assert tree_contains(tree, parse_term("f(3)"))
        assert not tree_contains(tree, parse_term("f(a)"))
        assert not tree_contains(tree, parse_term("g(3)"))

    def test_var_membership(self):
        assert tree_contains(VAR_T, parse_term("X"))
        assert not tree_contains(VAR_T, parse_term("a"))
