"""Tests for the abstract domain: sorts and type trees."""

import pytest

from repro.domain import (
    ANY_T,
    ATOM_T,
    AbsSort,
    CONST_T,
    EMPTY_T,
    GROUND_T,
    INTEGER_T,
    NIL_T,
    NV_T,
    VAR_T,
    make_list_tree,
    make_struct_tree,
    sort_glb,
    sort_leq,
    sort_lub,
    sort_unify,
    tree_glb,
    tree_is_empty,
    tree_is_ground,
    tree_leq,
    tree_lub,
    tree_summary_sort,
    tree_to_text,
    tree_unify,
)

S = AbsSort
GLIST = make_list_tree(GROUND_T)
ILIST = make_list_tree(INTEGER_T)
VLIST = make_list_tree(VAR_T)
FG = make_struct_tree("f", (GROUND_T,))
FANY = make_struct_tree("f", (ANY_T,))
FVAR = make_struct_tree("f", (VAR_T,))
CONS_G = make_struct_tree(".", (GROUND_T, GLIST))


class TestSortOrder:
    def test_chain(self):
        assert sort_leq(S.ATOM, S.CONST)
        assert sort_leq(S.CONST, S.GROUND)
        assert sort_leq(S.GROUND, S.NV)
        assert sort_leq(S.NV, S.ANY)
        assert sort_leq(S.VAR, S.ANY)
        assert sort_leq(S.EMPTY, S.ATOM)

    def test_incomparable(self):
        assert not sort_leq(S.ATOM, S.INTEGER)
        assert not sort_leq(S.VAR, S.NV)
        assert not sort_leq(S.NV, S.GROUND)

    def test_lub(self):
        assert sort_lub(S.ATOM, S.INTEGER) == S.CONST
        assert sort_lub(S.VAR, S.GROUND) == S.ANY
        assert sort_lub(S.NV, S.CONST) == S.NV
        assert sort_lub(S.EMPTY, S.ATOM) == S.ATOM

    def test_glb(self):
        assert sort_glb(S.ATOM, S.INTEGER) == S.EMPTY
        assert sort_glb(S.VAR, S.NV) == S.EMPTY
        assert sort_glb(S.ANY, S.GROUND) == S.GROUND
        assert sort_glb(S.NV, S.CONST) == S.CONST

    def test_unify_var_absorbs(self):
        assert sort_unify(S.VAR, S.NV) == S.NV
        assert sort_unify(S.GROUND, S.VAR) == S.GROUND
        assert sort_unify(S.VAR, S.VAR) == S.VAR

    def test_unify_is_glb_without_var(self):
        assert sort_unify(S.ANY, S.GROUND) == S.GROUND
        assert sort_unify(S.ATOM, S.INTEGER) == S.EMPTY


class TestTreeOrder:
    def test_list_below_nv(self):
        assert tree_leq(GLIST, NV_T)

    def test_glist_below_ground(self):
        assert tree_leq(GLIST, GROUND_T)

    def test_varlist_not_ground(self):
        assert not tree_leq(VLIST, GROUND_T)
        assert tree_leq(VLIST, NV_T)

    def test_nil_below_atom_and_const(self):
        assert tree_leq(NIL_T, ATOM_T)
        assert tree_leq(NIL_T, CONST_T)
        assert tree_leq(NIL_T, GLIST)

    def test_intlist_below_glist(self):
        assert tree_leq(ILIST, GLIST)
        assert not tree_leq(GLIST, ILIST)

    def test_struct_below_nv_and_ground(self):
        assert tree_leq(FG, NV_T)
        assert tree_leq(FG, GROUND_T)
        assert not tree_leq(FVAR, GROUND_T)

    def test_struct_pointwise(self):
        assert tree_leq(FG, FANY)
        assert not tree_leq(FANY, FG)

    def test_cons_below_list(self):
        assert tree_leq(CONS_G, GLIST)

    def test_cons_not_below_narrower_list(self):
        assert not tree_leq(CONS_G, ILIST)

    def test_everything_below_any(self):
        for tree in [VAR_T, GLIST, FG, CONS_G, NIL_T, EMPTY_T]:
            assert tree_leq(tree, ANY_T)

    def test_empty_below_everything(self):
        for tree in [VAR_T, GLIST, FG, ATOM_T]:
            assert tree_leq(EMPTY_T, tree)


class TestTreeLub:
    def test_lists(self):
        assert tree_lub(ILIST, make_list_tree(ATOM_T)) == make_list_tree(CONST_T)

    def test_nil_with_list(self):
        assert tree_lub(NIL_T, ILIST) == ILIST

    def test_list_with_cons(self):
        assert tree_lub(GLIST, CONS_G) == GLIST

    def test_list_with_improper_cons_widens(self):
        improper = make_struct_tree(".", (GROUND_T, VAR_T))
        assert tree_lub(GLIST, improper) == NV_T

    def test_same_functor_pointwise(self):
        assert tree_lub(FG, FVAR) == make_struct_tree(
            "f", (tree_lub(GROUND_T, VAR_T),)
        )

    def test_different_functors_ground(self):
        g1 = make_struct_tree("g", (INTEGER_T,))
        assert tree_lub(FG, g1) == GROUND_T

    def test_different_functors_nonground(self):
        g1 = make_struct_tree("g", (ANY_T,))
        assert tree_lub(FG, g1) == NV_T

    def test_var_with_struct(self):
        assert tree_lub(VAR_T, FG) == ANY_T

    def test_atom_with_list(self):
        assert tree_lub(ATOM_T, GLIST) == GROUND_T
        assert tree_lub(ATOM_T, VLIST) == NV_T

    def test_idempotent(self):
        for tree in [GLIST, FG, CONS_G, ANY_T]:
            assert tree_lub(tree, tree) == tree

    def test_upper_bound_property(self):
        pairs = [(ILIST, ATOM_T), (FG, VLIST), (VAR_T, CONS_G)]
        for a, b in pairs:
            join = tree_lub(a, b)
            assert tree_leq(a, join)
            assert tree_leq(b, join)


class TestTreeGlb:
    def test_ground_with_varlist(self):
        # glb keeps the lattice meet: list(var ⊓ g) = list(empty) = {[]}.
        assert tree_glb(GROUND_T, VLIST) == NIL_T

    def test_atom_with_list(self):
        assert tree_glb(ATOM_T, GLIST) == NIL_T

    def test_integer_with_list_empty(self):
        assert tree_is_empty(tree_glb(INTEGER_T, GLIST))

    def test_struct_with_ground(self):
        assert tree_glb(GROUND_T, FANY) == FG

    def test_lower_bound_property(self):
        pairs = [(GLIST, ILIST), (NV_T, FANY), (GROUND_T, CONS_G)]
        for a, b in pairs:
            meet = tree_glb(a, b)
            assert tree_leq(meet, a)
            assert tree_leq(meet, b)


class TestTreeUnify:
    def test_var_absorbed_in_list_elements(self):
        # THE difference from glb: unify([X,Y], [g,g]) stays possible.
        assert tree_unify(VLIST, GLIST) == GLIST

    def test_ground_pushed_into_struct(self):
        assert tree_unify(GROUND_T, FVAR) == FG

    def test_failure_atom_vs_integer(self):
        assert tree_unify(ATOM_T, INTEGER_T) is None

    def test_failure_different_functors(self):
        assert tree_unify(FG, make_struct_tree("g", (ANY_T,))) is None

    def test_failure_integer_vs_list(self):
        assert tree_unify(INTEGER_T, GLIST) is None

    def test_list_with_cons(self):
        result = tree_unify(ILIST, make_struct_tree(".", (VAR_T, VAR_T)))
        assert result == make_struct_tree(".", (INTEGER_T, ILIST))

    def test_any_absorbs(self):
        assert tree_unify(ANY_T, FG) == FG
        assert tree_unify(GLIST, ANY_T) == GLIST

    def test_nil_with_list(self):
        assert tree_unify(NIL_T, GLIST) == NIL_T

    def test_nv_with_list(self):
        assert tree_unify(NV_T, VLIST) == VLIST

    def test_const_with_list_is_nil(self):
        assert tree_unify(CONST_T, GLIST) == NIL_T

    def test_soundness_vs_glb(self):
        # unify result always contains the glb.
        pairs = [(GROUND_T, VLIST), (NV_T, FVAR), (ANY_T, CONS_G)]
        for a, b in pairs:
            unified = tree_unify(a, b)
            assert unified is not None
            assert tree_leq(tree_glb(a, b), unified)


class TestSummaries:
    def test_simple(self):
        assert tree_summary_sort(GROUND_T) == S.GROUND

    def test_glist_ground(self):
        assert tree_summary_sort(GLIST) == S.GROUND

    def test_varlist_nv(self):
        assert tree_summary_sort(VLIST) == S.NV

    def test_struct(self):
        assert tree_summary_sort(FG) == S.GROUND
        assert tree_summary_sort(FVAR) == S.NV

    def test_is_ground(self):
        assert tree_is_ground(NIL_T)
        assert tree_is_ground(GLIST)
        assert not tree_is_ground(VLIST)
        assert not tree_is_ground(ANY_T)


class TestDisplay:
    def test_texts(self):
        assert tree_to_text(GROUND_T) == "g"
        assert tree_to_text(GLIST) == "g-list"
        assert tree_to_text(NIL_T) == "[]"
        assert tree_to_text(FG) == "f(g)"
        assert tree_to_text(CONS_G) == "[g|g-list]"
