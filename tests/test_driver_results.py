"""Tests for entry specs, the fixpoint driver, and the results API."""

import pytest

from repro.analysis import Analyzer, analyze
from repro.analysis.driver import EntrySpec, parse_entry_spec
from repro.domain import AbsSort, tree_to_text
from repro.errors import AnalysisError

S = AbsSort


class TestEntrySpecs:
    def test_zero_arity(self):
        spec = parse_entry_spec("main")
        assert spec.indicator == ("main", 0)
        assert spec.pattern.args == ()

    def test_sort_atoms(self):
        spec = parse_entry_spec("p(any, nv, g, const, atom, int, var)")
        sorts = [node[1] for node in spec.pattern.args]
        assert sorts == [S.ANY, S.NV, S.GROUND, S.CONST, S.ATOM, S.INTEGER, S.VAR]

    def test_ground_alias(self):
        assert parse_entry_spec("p(ground)").pattern.args[0][1] == S.GROUND

    def test_list_shorthands(self):
        spec = parse_entry_spec("p(glist, intlist, anylist)")
        kinds = [node[0] for node in spec.pattern.args]
        assert kinds == ["li", "li", "li"]

    def test_list_functor(self):
        spec = parse_entry_spec("p(list(f(g)))")
        node = spec.pattern.args[0]
        assert node[0] == "li"
        assert tree_to_text(node[1]) == "f(g)"

    def test_structures(self):
        spec = parse_entry_spec("p(f(g, var))")
        assert spec.pattern.args[0][0] == "f"

    def test_shared_variables_alias(self):
        spec = parse_entry_spec("p(X, f(X))")
        from repro.analysis.patterns import share_pairs

        assert share_pairs(spec.pattern) == frozenset({(0, 1)})

    def test_nil(self):
        spec = parse_entry_spec("p([])")
        assert spec.pattern.args[0][0] == "li"

    def test_unknown_atom_rejected(self):
        with pytest.raises(AnalysisError):
            parse_entry_spec("p(bogus)")

    def test_non_callable_rejected(self):
        with pytest.raises(AnalysisError):
            parse_entry_spec("42")

    def test_spec_passthrough(self):
        spec = parse_entry_spec("p(g)")
        assert parse_entry_spec(spec) is spec


class TestDriver:
    def test_multiple_entries(self, append_nrev):
        analyzer = Analyzer(append_nrev)
        result = analyzer.analyze(["nrev(glist, var)", "app(var, var, glist)"])
        assert len(result.table.entries_for(("app", 3))) >= 2

    def test_no_entries_rejected(self, append_nrev):
        with pytest.raises(AnalysisError):
            Analyzer(append_nrev).analyze([])

    def test_accepts_program_object(self, append_nrev):
        from repro.prolog import Program

        result = Analyzer(Program.from_text(append_nrev)).analyze(
            ["nrev(glist, var)"]
        )
        assert result.iterations >= 1

    def test_accepts_compiled_program(self, append_nrev):
        from repro.prolog import Program
        from repro.wam import compile_program

        compiled = compile_program(Program.from_text(append_nrev))
        result = Analyzer(compiled).analyze(["nrev(glist, var)"])
        assert result.iterations >= 1

    def test_depth_parameter(self, append_nrev):
        shallow = analyze(append_nrev, "nrev(glist, var)", depth=1)
        assert shallow.depth == 1

    def test_seconds_recorded(self, append_nrev):
        result = analyze(append_nrev, "nrev(glist, var)")
        assert result.seconds > 0


class TestResultsApi:
    def test_predicates_exclude_query_stubs(self, append_nrev):
        result = analyze(append_nrev, "nrev(glist, var)")
        names = [ind[0] for ind in result.predicates()]
        assert "nrev" in names and "app" in names
        assert not any(name.startswith("$query") for name in names)

    def test_unknown_predicate_info(self, append_nrev):
        result = analyze(append_nrev, "nrev(glist, var)")
        assert result.predicate(("nothere", 9)) is None
        assert result.modes(("nothere", 9)) == []

    def test_argument_info(self, append_nrev):
        result = analyze(append_nrev, "nrev(glist, var)")
        info = result.predicate(("nrev", 2))
        assert info.arguments[0].mode == "+g"
        assert info.arguments[1].mode == "-"

    def test_info_cached(self, append_nrev):
        result = analyze(append_nrev, "nrev(glist, var)")
        assert result.predicate(("nrev", 2)) is result.predicate(("nrev", 2))

    def test_to_text_report(self, append_nrev):
        result = analyze(append_nrev, "nrev(glist, var)")
        text = result.to_text()
        assert "nrev/2" in text
        assert "app/3" in text
        assert "iteration" in text

    def test_report_flags_never_succeeds(self):
        result = analyze("p(a).", "p(int)")
        assert "never succeeds" in result.to_text()

    def test_table_text(self, append_nrev):
        result = analyze(append_nrev, "nrev(glist, var)")
        assert "nrev/2" in result.table_text()

    def test_zero_arity_report(self):
        result = analyze("main. ", "main")
        assert "main/0: succeeds" in result.to_text()

    def test_aliasing_in_report(self):
        result = analyze("eq(X, X).", "eq(var, var)")
        assert "alias" in result.predicate(("eq", 2)).to_text()


class TestUndefinedPolicy:
    PARTIAL = "main :- helper(X), use(X). use(_)."

    def test_error_default(self):
        from repro.errors import PrologError

        with pytest.raises(PrologError):
            analyze(self.PARTIAL, "main")

    def test_fail_policy(self):
        result = analyze(self.PARTIAL, "main", on_undefined="fail")
        assert not result.predicate(("main", 0)).can_succeed

    def test_top_policy(self):
        from repro.domain import ANY_T

        result = analyze(self.PARTIAL, "main", on_undefined="top")
        assert result.predicate(("main", 0)).can_succeed
        assert result.success_types(("helper", 1)) == [ANY_T]

    def test_top_policy_assumes_aliasing(self):
        text = "main :- mystery(A, B), p(A), q(B). p(_). q(_)."
        result = analyze(text, "main", on_undefined="top")
        info = result.predicate(("mystery", 2))
        assert (0, 1) in info.success_aliasing

    def test_bad_policy_rejected(self):
        with pytest.raises(AnalysisError):
            analyze(self.PARTIAL, "main", on_undefined="nonsense")


class TestJsonView:
    def test_to_dict_shape(self, append_nrev):
        result = analyze(append_nrev, "nrev(glist, var)")
        data = result.to_dict()
        assert data["iterations"] >= 2
        nrev = data["predicates"]["nrev/2"]
        assert nrev["modes"] == ["+g", "-"]
        assert nrev["success_types"] == ["g-list", "g-list"]
        assert nrev["can_succeed"]

    def test_to_dict_json_serializable(self, append_nrev):
        import json

        result = analyze(append_nrev, "nrev(glist, var)")
        text = json.dumps(result.to_dict())
        assert "g-list" in text

    def test_failing_predicate_nulls(self):
        result = analyze("p(a).", "p(int)")
        data = result.to_dict()
        assert data["predicates"]["p/1"]["success_types"] == [None]
