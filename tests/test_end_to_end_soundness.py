"""End-to-end soundness: the analysis over-approximates real execution.

For a program P and a concrete goal g, every concrete answer produced by
the WAM must be contained in the success pattern the analyzer computes for
the abstraction of g.  This is the global safety statement of abstract
interpretation, checked over fixed programs with generated inputs.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.analysis import Analyzer
from repro.analysis.driver import EntrySpec
from repro.analysis.patterns import Pattern, canonicalize, pattern_to_trees
from repro.domain import abstract_term, tree_contains
from repro.prolog import Program, parse_term, term_to_text
from repro.prolog.terms import Term, Var, term_vars
from repro.wam import Machine, compile_program

import itertools


def entry_from_goal(goal: Term) -> EntrySpec:
    """Abstract a concrete goal into an entry spec (shared vars alias)."""
    from repro.analysis.patterns import tree_to_node
    from repro.domain import AbsSort
    from repro.prolog.terms import Struct, indicator_of

    counter = itertools.count()
    var_ids = {}
    nodes = []
    arguments = goal.args if isinstance(goal, Struct) else ()
    for argument in arguments:
        if isinstance(argument, Var):
            ident = var_ids.get(id(argument))
            if ident is None:
                ident = next(counter)
                var_ids[id(argument)] = ident
            nodes.append(("i", AbsSort.VAR, ident))
        else:
            nodes.append(tree_to_node(abstract_term(argument), counter))
    return EntrySpec(indicator_of(goal), canonicalize(Pattern(tuple(nodes))))


def check_soundness(program_text: str, goal_text: str, max_solutions=20):
    """Run concretely and abstractly; assert answers ∈ success pattern."""
    program = Program.from_text(program_text)
    goal = parse_term(goal_text)
    machine = Machine(compile_program(program))
    answers = []
    for solution in machine.run(goal):
        answers.append({k: v for k, v in solution.items()})
        if len(answers) >= max_solutions:
            break

    spec = entry_from_goal(goal)
    result = Analyzer(program).analyze([spec])
    entry = result.table.find(spec.indicator, spec.pattern)
    assert entry is not None

    if not answers:
        return  # concrete failure needs nothing from the analysis
    assert entry.success is not None, (
        f"analysis claims {goal_text} cannot succeed, but it does"
    )
    success_trees = pattern_to_trees(entry.success)
    goal_args = goal.args
    variables = {v.name: i for i, v in enumerate(term_vars(goal))}
    for answer in answers:
        # Substitute the answer back into the goal arguments and check
        # each against the success pattern component.
        from repro.prolog.terms import Struct, rename_term

        def substitute(term):
            if isinstance(term, Var):
                return answer.get(term.name, term)
            if isinstance(term, Struct):
                return Struct(term.name, tuple(substitute(a) for a in term.args))
            return term

        for position, argument in enumerate(goal_args):
            concrete = substitute(argument)
            assert tree_contains(success_trees[position], concrete), (
                f"answer arg {position + 1} = {term_to_text(concrete)} "
                f"escapes success type "
                f"{success_trees[position]} for {goal_text}"
            )


LIST_PROGRAM = """
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
rev([], []).
rev([H|T], R) :- rev(T, RT), app(RT, [H], R).
len([], 0).
len([_|T], N) :- len(T, M), N is M + 1.
pal(L) :- rev(L, L).
"""

SORT_PROGRAM = """
qsort([], R, R).
qsort([X|L], R0, R) :-
    part(L, X, L1, L2), qsort(L2, R1, R), qsort(L1, R0, [X|R1]).
part([], _, [], []).
part([X|L], Y, [X|L1], L2) :- X =< Y, !, part(L, Y, L1, L2).
part([X|L], Y, L1, [X|L2]) :- part(L, Y, L1, L2).
"""

MEMBER_PROGRAM = """
mem(X, [X|_]).
mem(X, [_|T]) :- mem(X, T).
sel(X, [X|T], T).
sel(X, [H|T], [H|R]) :- sel(X, T, R).
"""


class TestFixedGoals:
    @pytest.mark.parametrize(
        "goal",
        [
            "app([1, 2], [a], R)",
            "app(X, Y, [1, 2, 3])",
            "rev([1, 2, 3], R)",
            "len([a, b, c], N)",
            "pal([1, 2, 1])",
            "app([X], [Y], R)",
        ],
    )
    def test_list_program(self, goal):
        check_soundness(LIST_PROGRAM, goal)

    @pytest.mark.parametrize(
        "goal",
        [
            "qsort([3, 1, 2], S, [])",
            "qsort([], S, [])",
            "qsort([5, 5, 5], S, [])",
        ],
    )
    def test_sort_program(self, goal):
        check_soundness(SORT_PROGRAM, goal)

    @pytest.mark.parametrize(
        "goal",
        [
            "mem(X, [1, a, f(b)])",
            "mem(2, [1, 2, 3])",
            "sel(X, [1, 2, 3], R)",
            "sel(a, L, [b, c])",
        ],
    )
    def test_member_program(self, goal):
        check_soundness(MEMBER_PROGRAM, goal)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=9), max_size=5))
def test_reverse_generated(items):
    goal = "rev([" + ", ".join(str(i) for i in items) + "], R)"
    check_soundness(LIST_PROGRAM, goal)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=5))
def test_qsort_generated(items):
    goal = "qsort([" + ", ".join(str(i) for i in items) + "], S, [])"
    check_soundness(SORT_PROGRAM, goal)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.sampled_from(["a", "b", "1", "f(a)", "[c]"]),
        min_size=1,
        max_size=4,
    )
)
def test_member_generated(items):
    goal = "mem(X, [" + ", ".join(items) + "])"
    check_soundness(MEMBER_PROGRAM, goal)
