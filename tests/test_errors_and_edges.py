"""Edge cases: error types, code-area linking, operator table updates."""

import pytest

from repro.errors import (
    AnalysisError,
    CompileError,
    MachineError,
    PrologError,
    PrologSyntaxError,
    ReproError,
)
from repro.prolog import OperatorTable, Program, parse_term
from repro.prolog.terms import Atom
from repro.wam import compile_predicate
from repro.wam.code import CodeArea, PredicateCode
from repro.wam.instructions import Instr, Label, label_marker, proceed


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for cls in (
            PrologSyntaxError,
            PrologError,
            CompileError,
            MachineError,
            AnalysisError,
        ):
            assert issubclass(cls, ReproError)

    def test_syntax_error_position(self):
        error = PrologSyntaxError("bad", line=3, column=7)
        assert error.line == 3
        assert error.column == 7
        assert "line 3" in str(error)

    def test_syntax_error_without_position(self):
        assert "line" not in str(PrologSyntaxError("oops"))

    def test_prolog_error_kind(self):
        error = PrologError("type_error", "not a list")
        assert error.kind == "type_error"
        assert "type_error" in str(error)


class TestCodeAreaLinking:
    def unit(self, name, instructions):
        return PredicateCode((name, 0), instructions, 1, [])

    def test_duplicate_predicate_rejected(self):
        code = CodeArea()
        code.link([self.unit("p", [proceed()])])
        with pytest.raises(CompileError):
            code.link([self.unit("p", [proceed()])])

    def test_duplicate_label_rejected(self):
        code = CodeArea()
        unit = self.unit(
            "p", [label_marker(Label("a")), label_marker(Label("a")), proceed()]
        )
        with pytest.raises(CompileError):
            code.link([unit])

    def test_undefined_label_rejected(self):
        code = CodeArea()
        unit = self.unit("p", [Instr("try_me_else", (Label("missing"),))])
        with pytest.raises(CompileError):
            code.link([unit])

    def test_labels_resolved_to_addresses(self):
        code = CodeArea()
        unit = self.unit(
            "p",
            [
                Instr("try_me_else", (Label("end"),)),
                proceed(),
                label_marker(Label("end")),
                proceed(),
            ],
        )
        code.link([unit])
        assert code.at(0).args[0] == 2

    def test_incremental_linking(self):
        code = CodeArea()
        code.link([self.unit("p", [proceed()])])
        code.link([self.unit("q", [proceed()])])
        assert code.entry[("q", 0)] == 1

    def test_predicate_at(self):
        code = CodeArea()
        code.link([self.unit("p", [proceed(), proceed()])])
        code.link([self.unit("q", [proceed()])])
        assert code.predicate_at(0) == ("p", 0)
        assert code.predicate_at(1) == ("p", 0)
        assert code.predicate_at(2) == ("q", 0)

    def test_size_of(self):
        code = CodeArea()
        code.link([self.unit("p", [proceed(), proceed()])])
        code.link([self.unit("q", [proceed()])])
        assert code.size_of(("p", 0)) == 2
        assert code.size_of(("q", 0)) == 1


class TestOperatorTable:
    def test_add_and_use(self):
        table = OperatorTable()
        table.add(700, "xfx", "~~>")
        assert parse_term("a ~~> b", table).name == "~~>"

    def test_remove_with_priority_zero(self):
        table = OperatorTable()
        table.add(0, "xfx", "<")
        with pytest.raises(Exception):
            parse_term("1 < 2", table)

    def test_priority_range_checked(self):
        table = OperatorTable()
        with pytest.raises(ValueError):
            table.add(5000, "xfx", "bad")

    def test_bad_kind_rejected(self):
        table = OperatorTable()
        with pytest.raises(ValueError):
            table.add(700, "zzz", "bad")

    def test_is_operator(self):
        table = OperatorTable()
        assert table.is_operator("+")
        assert not table.is_operator("plainatom")

    def test_postfix_definition(self):
        table = OperatorTable()
        table.add(500, "xf", "!!")
        definition = table.postfix("!!")
        assert definition is not None and definition.is_postfix

    def test_argument_priorities(self):
        table = OperatorTable()
        definition = table.infix("+")
        assert definition.argument_priorities() == (500, 499)


class TestCliTableMains:
    def test_table1_main_small(self, capsys):
        from repro.bench.table1 import main

        assert main(["tak", "--repeats", "1", "--baseline", "meta"]) == 0
        out = capsys.readouterr().out
        assert "tak" in out and "Speed-Up" in out

    def test_table2_main_small(self, capsys):
        from repro.bench.table2 import main

        assert (
            main(["tak", "--repeats", "1", "--baseline", "meta", "--no-paper"])
            == 0
        )
        out = capsys.readouterr().out
        assert "SS2" in out
