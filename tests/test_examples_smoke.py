"""Every example script runs successfully and prints its headline output."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=240):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "[5, 4, 3, 2, 1]" in out
    assert "nrev/2" in out
    assert "['+g', '+g', '-']" in out


def test_paper_example():
    out = run_example("paper_example.py")
    assert "get_structure f/1, X3" in out
    assert "updateET p/2(atom, g-list)" in out
    assert "p/2(atom, g-list) -> (atom, g-list)" in out


def test_analyze_benchmarks_subset():
    out = run_example("analyze_benchmarks.py", "tak")
    assert "tak/4" in out
    assert "iteration" in out


def test_optimize_with_analysis():
    out = run_example("optimize_with_analysis.py", "nreverse")
    assert "specialization" in out
    assert "ground" in out


def test_parallelize_default():
    out = run_example("parallelize.py")
    assert "work(M, L)  &  work(M, R): independent" in out


def test_compare_analyzers():
    out = run_example("compare_analyzers.py", "tak")
    assert "abstract WAM (compiled)" in out
    assert "Prolog-hosted analyzer" in out


@pytest.mark.slow
def test_reproduce_table1_subset():
    out = run_example(
        "reproduce_table1.py", "tak", "--repeats", "1", timeout=300
    )
    assert "Table 1" in out
    assert "tak" in out


def test_dcg_grammar():
    out = run_example("dcg_grammar.py")
    assert "s(np(d(the), n(cat)), vp(v(sees), np(d(a), n(dog))))" in out
    assert "generates 40 sentences" in out
    assert "sentence/3" in out
