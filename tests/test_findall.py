"""Tests for the solver's all-solutions builtins."""

import pytest

from tests.conftest import solve_texts

PROGRAM = """
p(1). p(2). p(3).
q(a, 1). q(b, 2).
loop(X) :- p(X).
"""


class TestFindall:
    def test_collects_in_order(self):
        assert solve_texts(PROGRAM, "findall(X, p(X), L)")[0]["L"] == "[1, 2, 3]"

    def test_template_shaping(self):
        result = solve_texts(PROGRAM, "findall(K-V, q(K, V), L)")
        assert result[0]["L"] == "[a - 1, b - 2]"

    def test_empty_on_failure(self):
        assert solve_texts(PROGRAM, "findall(X, q(z, X), L)")[0]["L"] == "[]"

    def test_bindings_not_leaked(self):
        result = solve_texts(PROGRAM, "(findall(X, p(X), _), X = free)")
        assert result[0]["X"] == "free"

    def test_nested_findall(self):
        result = solve_texts(
            PROGRAM, "findall(L, (q(K, _), findall(X, p(X), L)), Ls)"
        )
        assert result[0]["Ls"] == "[[1, 2, 3], [1, 2, 3]]"

    def test_unifies_with_given_list(self):
        assert solve_texts(PROGRAM, "findall(X, p(X), [1, 2, 3])") != []
        assert solve_texts(PROGRAM, "findall(X, p(X), [9])") == []


class TestForall:
    def test_holds(self):
        assert solve_texts(PROGRAM, "forall(p(X), X > 0)") != []

    def test_fails(self):
        assert solve_texts(PROGRAM, "forall(p(X), X > 1)") == []

    def test_vacuous(self):
        assert solve_texts(PROGRAM, "forall(q(zzz, _), fail)") != []

    def test_no_bindings_leak(self):
        result = solve_texts(PROGRAM, "(forall(p(X), X > 0), X = ok)")
        assert result[0]["X"] == "ok"


class TestCount:
    def test_counts(self):
        assert solve_texts(PROGRAM, "'$count'(p(_), N)")[0]["N"] == "3"

    def test_zero(self):
        assert solve_texts(PROGRAM, "'$count'(q(z, _), N)")[0]["N"] == "0"
