"""repro.fuzz generator and mutator: the by-construction guarantees.

Every generated program must be parseable, compilable, analyzable and
terminating within a step budget; generation and mutation must be
deterministic per seed; mutants must stay parseable and never introduce
the sort atoms the PrologAnalyzer baseline reserves.
"""

import random

import pytest

from repro.analysis.driver import Analyzer
from repro.fuzz.grammar import (
    CURATED_BUILTINS,
    GenConfig,
    ProgramGenerator,
    generate_program,
)
from repro.fuzz.mutate import (
    MUTATION_OPS,
    RESERVED_ATOMS,
    STRUCTURAL_OPS,
    Mutator,
    render_program,
)
from repro.prolog.parser import parse_term
from repro.prolog.program import Program
from repro.prolog.solver import Solver
from repro.prolog.terms import Atom, Struct
from repro.wam.compile import compile_program

SEEDS = range(20)


def _body_goal_names(program):
    for predicate in program.predicates.values():
        for clause in predicate.clauses:
            for goal in clause.body:
                if isinstance(goal, Struct):
                    yield goal.name
                elif isinstance(goal, Atom):
                    yield goal.name


class TestGenerator:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_parses_compiles_analyzes(self, seed):
        generated = generate_program(seed)
        program = Program.from_text(generated.source)
        compile_program(program)
        result = Analyzer(program).analyze(generated.entries)
        assert result.stable_dict()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_deterministic_per_seed(self, seed):
        first = generate_program(seed)
        second = generate_program(seed)
        assert first.source == second.source
        assert first.goals == second.goals
        assert first.entries == second.entries
        assert first.features == second.features

    def test_different_seeds_differ(self):
        sources = {generate_program(seed).source for seed in SEEDS}
        assert len(sources) > 1

    @pytest.mark.parametrize("seed", range(8))
    def test_goals_terminate_within_budget(self, seed):
        # Termination by construction: every query on ground inputs
        # finishes well inside the step budget on the SLD solver.
        generated = generate_program(seed)
        program = Program.from_text(generated.source)
        for goal_text in generated.goals:
            solver = Solver(program, max_steps=200_000)
            for count, _ in enumerate(solver.solve(parse_term(goal_text))):
                if count >= 30:
                    break

    @pytest.mark.parametrize("seed", SEEDS)
    def test_only_curated_builtins(self, seed):
        generated = generate_program(seed)
        program = Program.from_text(generated.source)
        defined = {name for name, _ in program.predicates}
        for name in _body_goal_names(program):
            assert name in defined or name in CURATED_BUILTINS \
                or name == ",", name

    @pytest.mark.parametrize("seed", SEEDS)
    def test_no_reserved_sort_atoms(self, seed):
        generated = generate_program(seed)
        program = Program.from_text(generated.source)
        for name, _ in program.predicates:
            assert name not in RESERVED_ATOMS

    def test_size_budget_bounds_clause_count(self):
        config = GenConfig(size_budget=12)
        for seed in range(10):
            generated = generate_program(seed, config)
            program = Program.from_text(generated.source)
            clauses = sum(
                len(p.clauses) for p in program.predicates.values()
            )
            # the budget caps helper emission; main adds one clause
            assert clauses <= 12 + ProgramGenerator(seed, config).config.max_clauses + 1

    def test_entries_align_with_goals(self):
        for seed in range(6):
            generated = generate_program(seed)
            assert len(generated.goals) == len(generated.entries)
            for goal, entry in zip(generated.goals, generated.entries):
                assert goal.split("(", 1)[0] == entry.split("(", 1)[0]

    def test_features_reported(self):
        generated = generate_program(0)
        assert any(key.startswith("template.") for key in generated.features)


class TestMutator:
    PROGRAM = (
        "p(a).\n"
        "p(b) :- q(1), q(2).\n"
        "q(X) :- p(a).\n"
    )

    def test_deterministic_per_seed(self):
        for seed in range(10):
            first = Mutator(random.Random(f"m{seed}")).mutate_text(
                self.PROGRAM, count=3
            )
            second = Mutator(random.Random(f"m{seed}")).mutate_text(
                self.PROGRAM, count=3
            )
            assert first == second

    def test_mutants_stay_parseable(self):
        rng = random.Random("parseable")
        mutator = Mutator(rng)
        text = self.PROGRAM
        for _ in range(25):
            text, applied = mutator.mutate_text(text)
            assert applied
            Program.from_text(text)  # must not raise

    def test_mutants_never_introduce_reserved_atoms(self):
        rng = random.Random("reserved")
        mutator = Mutator(rng)
        text = self.PROGRAM
        for _ in range(50):
            text, _ = mutator.mutate_text(text)
        program = Program.from_text(text)
        for predicate in program.predicates.values():
            for clause in predicate.clauses:
                for atom_text in RESERVED_ATOMS:
                    rendered = render_program(program)
                    assert f"{atom_text}(" not in rendered

    def test_structural_ops_preserve_clause_sites(self):
        # structural edits never leave a predicate without clauses
        rng = random.Random("structural")
        mutator = Mutator(rng, ops=STRUCTURAL_OPS)
        text = self.PROGRAM
        for _ in range(20):
            text, applied = mutator.mutate_text(text)
            assert applied and set(applied) <= set(STRUCTURAL_OPS)
            program = Program.from_text(text)
            assert all(p.clauses for p in program.predicates.values())

    def test_every_registered_op_applies_somewhere(self):
        # a program rich enough that each operator finds a site
        rich = (
            "r(a, 1) :- !, s(b).\n"
            "r(b, 2) :- s(c), s(d).\n"
            "s(X).\n"
        )
        for name, (fn, safety) in MUTATION_OPS.items():
            assert safety in ("structural", "aggressive")
            program = Program.from_text(rich)
            assert fn(program, random.Random(name)) is True, name
            Program.from_text(render_program(program))

    def test_ops_decline_without_sites(self):
        # a single fact offers no delete/swap/goal sites
        program = Program.from_text("lone(x).\n")
        rng = random.Random("decline")
        for name in ("delete_clause", "swap_clauses", "drop_goal",
                     "swap_goals", "remove_cut", "tweak_int"):
            fn, _ = MUTATION_OPS[name]
            assert fn(program, rng) is False, name

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            Mutator(random.Random(0), ops=("no_such_op",))

    def test_render_round_trip_preserves_analysis(self):
        program = Program.from_text(self.PROGRAM)
        rendered = render_program(program)
        first = Analyzer(Program.from_text(self.PROGRAM)).analyze(
            ["p(g)"]
        ).stable_dict()
        second = Analyzer(Program.from_text(rendered)).analyze(
            ["p(g)"]
        ).stable_dict()
        assert first == second
