"""repro.fuzz oracles: the battery passes on honest artifacts and
catches planted bugs.

The acceptance test of the subsystem lives here: a deliberately
unsound optimizer transform (silently dropping clauses) must be caught
by the translation-validation oracle and delta-debugged down to a
reproducer of at most five clauses.
"""

import pytest

from repro.fuzz import (
    ExecutionAgreementOracle,
    IncrementalServeOracle,
    LatticeAgreementOracle,
    OptValidationOracle,
    SoundnessOracle,
    Subject,
    default_oracles,
    entry_from_goal,
    generate_program,
    oracles_by_name,
    shrink,
)
from repro.fuzz.oracles import OK, SKIP, VIOLATION
from repro.prolog.parser import parse_term
from repro.prolog.program import Program
from repro.wam.compile import compile_program


def _subject(seed):
    generated = generate_program(seed)
    return Subject(
        source=generated.source, goals=generated.goals,
        entries=generated.entries, edit_seed=seed,
    )


class TestBatteryOnHonestPrograms:
    @pytest.mark.parametrize("seed", range(4))
    def test_no_violations(self, seed):
        subject = _subject(seed)
        for oracle in default_oracles():
            verdict = oracle.check(subject)
            assert not verdict.is_violation, (
                f"seed {seed} {oracle.name}: {verdict.detail}"
            )

    def test_benchmark_program_passes(self):
        from repro.bench.programs import BY_NAME

        bench = BY_NAME["nreverse"]
        subject = Subject(
            source=bench.source, goals=[bench.test_goal],
            entries=[bench.entry],
        )
        for oracle in default_oracles():
            verdict = oracle.check(subject)
            assert not verdict.is_violation, (
                f"{oracle.name}: {verdict.detail}"
            )


class TestExecutionOracle:
    def test_agreeing_runtime_errors_are_agreement(self):
        # both engines raise the same instantiation error: agreement
        subject = Subject(source="p(X) :- Y is X + 1.\n", goals=["p(Z)"])
        assert ExecutionAgreementOracle().check(subject).status == OK

    def test_budget_exhaustion_is_a_skip(self):
        subject = Subject(
            source="loop :- loop.\n", goals=["loop"], max_steps=500,
        )
        assert ExecutionAgreementOracle().check(subject).status == SKIP

    def test_runaway_recursion_capped_by_depth(self):
        # With a generous step budget, unbounded recursion would
        # overflow the C stack (the solver core is generator-recursive);
        # the Subject depth cap turns it into a budget skip instead.
        subject = Subject(
            source="count(N) :- M is N + 1, count(M).\n",
            goals=["count(0)"], max_steps=200_000,
        )
        assert subject.max_depth == 2_000
        assert ExecutionAgreementOracle().check(subject).status == SKIP


class TestSoundnessOracle:
    def test_entry_from_goal_abstracts_arguments(self):
        spec = entry_from_goal(parse_term("p([1, 2], X, f(Y))"))
        assert spec.indicator == ("p", 3)

    def test_no_answers_is_a_skip(self):
        subject = Subject(source="p(a).\n", goals=["p(b)"])
        assert SoundnessOracle().check(subject).status == SKIP

    def test_observed_answers_checked(self):
        subject = Subject(
            source="len([], 0).\n"
                   "len([_|T], N) :- len(T, M), N is M + 1.\n",
            goals=["len([1,2,3], N)"],
        )
        verdict = SoundnessOracle().check(subject)
        assert verdict.status == OK, verdict.detail


class TestLatticeOracle:
    def test_no_entries_is_a_skip(self):
        subject = Subject(source="p(a).\n", goals=["p(X)"], entries=[])
        assert LatticeAgreementOracle().check(subject).status == SKIP

    def test_agreement_on_append(self):
        subject = Subject(
            source="app([], L, L).\n"
                   "app([H|T], L, [H|R]) :- app(T, L, R).\n",
            entries=["app(glist, glist, var)"],
        )
        verdict = LatticeAgreementOracle().check(subject)
        assert verdict.status == OK, verdict.detail


def _clause_dropping_transform(compiled, result):
    """The planted bug: silently drop the last clause of every
    multi-clause predicate — unsound, must be caught."""
    program = Program(compiled.program.operators)
    for directive in compiled.program.directives:
        program.directives.append(directive)
    for predicate in compiled.program.predicates.values():
        clauses = (
            predicate.clauses[:-1]
            if len(predicate.clauses) > 1 else predicate.clauses
        )
        for clause in clauses:
            program.add_clause(clause)
    return compile_program(program)


class TestPlantedUnsoundTransform:
    """The subsystem acceptance criterion: the planted transform is
    caught by the opt oracle and shrinks to ≤ 5 clauses."""

    def test_caught_and_shrunk_small(self):
        oracle = OptValidationOracle(transform=_clause_dropping_transform)
        generated = generate_program(0)
        subject = Subject(
            source=generated.source, goals=generated.goals,
            entries=generated.entries,
        )
        verdict = oracle.check(subject)
        assert verdict.status == VIOLATION, verdict.detail

        def still_failing(candidate):
            return oracle.check(Subject(
                source=candidate, goals=generated.goals,
                entries=generated.entries,
            )).is_violation

        result = shrink(generated.source, still_failing)
        assert result.clauses_after <= 5, result.source
        assert result.clauses_after < result.clauses_before
        assert still_failing(result.source)

    def test_shrink_is_deterministic(self):
        oracle = OptValidationOracle(transform=_clause_dropping_transform)
        generated = generate_program(0)

        def still_failing(candidate):
            return oracle.check(Subject(
                source=candidate, goals=generated.goals,
                entries=generated.entries,
            )).is_violation

        first = shrink(generated.source, still_failing)
        second = shrink(generated.source, still_failing)
        assert first.source == second.source
        assert first.to_dict() == second.to_dict()

    def test_honest_transform_is_clean(self):
        generated = generate_program(0)
        subject = Subject(
            source=generated.source, goals=generated.goals,
            entries=generated.entries,
        )
        assert OptValidationOracle().check(subject).status == OK


class TestServeOracle:
    def test_ok_on_generated_program(self):
        subject = _subject(1)
        verdict = IncrementalServeOracle().check(subject)
        assert verdict.status == OK, verdict.detail

    def test_no_entries_is_a_skip(self):
        subject = Subject(source="p(a).\n", goals=["p(X)"], entries=[])
        assert IncrementalServeOracle().check(subject).status == SKIP


class TestOracleRegistry:
    def test_default_battery_order(self):
        names = [oracle.name for oracle in default_oracles()]
        assert names == ["execution", "soundness", "lattice", "opt", "serve"]

    def test_by_name_selects(self):
        [only] = oracles_by_name(["lattice"])
        assert only.name == "lattice"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            oracles_by_name(["nonesuch"])
