"""repro.fuzz.runner and the repro-fuzz CLI.

Campaign summaries must be a pure function of (seed, count, config):
two runs produce equal documents, and the CLI writes byte-identical
JSON.  Tests always redirect ``--out`` into tmp_path so campaigns
never clobber the committed BENCH_fuzz.json artifact (same idiom as
test_bench.py).
"""

import json

import pytest

from repro.fuzz import (
    CampaignConfig,
    Corpus,
    GenConfig,
    OptValidationOracle,
    benchmark_seed_sources,
    run_campaign,
)
from repro.prolog.program import Program
from repro.wam.compile import compile_program

SMALL = CampaignConfig(seed=5, count=6, gen=GenConfig(size_budget=15))


class TestCampaign:
    def test_summary_structure(self):
        document = run_campaign(SMALL)
        assert document["count"] == 6
        assert document["violation_count"] == 0
        assert set(document["oracles"]) == {
            "execution", "soundness", "lattice", "opt", "serve",
        }
        for counts in document["oracles"].values():
            assert counts["violation"] == 0
            assert counts["ok"] + counts["skip"] == 6
        programs = document["programs"]
        assert programs["generated"] + programs["mutated"] == 6
        assert programs["uncompilable"] == 0
        coverage = document["coverage"]
        assert coverage["opcodes_covered"] > 10
        assert coverage["builtins"]

    def test_deterministic_documents(self):
        first = run_campaign(SMALL)
        second = run_campaign(SMALL)
        assert first == second
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_different_seeds_differ(self):
        other = CampaignConfig(seed=6, count=6, gen=GenConfig(size_budget=15))
        assert run_campaign(SMALL) != run_campaign(other)

    def test_oracle_subset(self):
        config = CampaignConfig(
            seed=5, count=3, oracles=["execution", "lattice"],
            gen=GenConfig(size_budget=15),
        )
        document = run_campaign(config)
        assert set(document["oracles"]) == {"execution", "lattice"}

    def test_benchmark_seed_pool(self):
        pool = benchmark_seed_sources()
        assert len(pool) >= 5
        for label, source, goals, entries in pool:
            assert label.startswith("bench:")
            assert goals and entries
            compile_program(Program.from_text(source))


def _clause_dropping_transform(compiled, result):
    program = Program(compiled.program.operators)
    for predicate in compiled.program.predicates.values():
        clauses = (
            predicate.clauses[:-1]
            if len(predicate.clauses) > 1 else predicate.clauses
        )
        for clause in clauses:
            program.add_clause(clause)
    return compile_program(program)


class TestViolationPath:
    """A campaign with the planted transform: violations recorded,
    shrunk, and stored as corpus reproducers."""

    def _run(self, tmp_path, shrink=True):
        config = CampaignConfig(
            seed=0, count=3, mutate_ratio=0.0,
            gen=GenConfig(size_budget=15),
            shrink=shrink, shrink_attempts=200,
            corpus_dir=str(tmp_path / "corpus"),
        )
        planted = [OptValidationOracle(transform=_clause_dropping_transform)]
        return config, run_campaign(config, oracles=planted)

    def test_violations_caught_shrunk_and_stored(self, tmp_path):
        _, document = self._run(tmp_path)
        assert document["violation_count"] > 0
        assert document["shrink"]["runs"] == document["violation_count"]
        assert (
            document["shrink"]["clauses_after"]
            <= document["shrink"]["clauses_before"]
        )
        corpus = Corpus(str(tmp_path / "corpus"))
        names = corpus.names()
        assert names
        for record in document["violations"]:
            assert record["oracle"] == "opt"
            assert record["minimized"].count(".\n") <= 5
            assert record["corpus"] in names
        for reproducer in corpus.entries():
            assert reproducer.oracle == "opt"
            assert reproducer.meta["shrink"]["clauses_after"] >= 1

    def test_no_shrink_mode(self, tmp_path):
        _, document = self._run(tmp_path, shrink=False)
        assert document["violation_count"] > 0
        assert document["shrink"]["runs"] == 0
        assert all("minimized" not in v for v in document["violations"])


class TestCli:
    def test_writes_summary_and_exits_zero(self, tmp_path, capsys):
        from repro.cli import main_fuzz

        out = tmp_path / "BENCH_fuzz.json"
        status = main_fuzz([
            "--seed", "5", "--count", "4", "--size-budget", "15",
            "--out", str(out), "--quiet",
        ])
        assert status == 0
        document = json.loads(out.read_text())
        assert document["seed"] == 5
        assert document["count"] == 4
        assert document["violation_count"] == 0
        assert "wrote" in capsys.readouterr().out

    def test_byte_identical_across_runs(self, tmp_path):
        from repro.cli import main_fuzz

        first = tmp_path / "one.json"
        second = tmp_path / "two.json"
        for out in (first, second):
            assert main_fuzz([
                "--seed", "9", "--count", "4", "--size-budget", "15",
                "--out", str(out), "--quiet",
            ]) == 0
        assert first.read_bytes() == second.read_bytes()

    def test_no_wall_clock_in_document(self, tmp_path):
        # byte determinism forbids any timing field
        from repro.cli import main_fuzz

        out = tmp_path / "BENCH_fuzz.json"
        main_fuzz([
            "--seed", "5", "--count", "3", "--size-budget", "15",
            "--out", str(out), "--quiet",
        ])
        text = out.read_text()
        for marker in ("_ms", "_s\"", "seconds", "time"):
            assert marker not in text

    def test_stdout_mode(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main_fuzz

        monkeypatch.chdir(tmp_path)  # a stray write would land here
        status = main_fuzz([
            "--seed", "5", "--count", "2", "--size-budget", "15",
            "--out", "-", "--quiet",
        ])
        assert status == 0
        document = json.loads(capsys.readouterr().out)
        assert document["count"] == 2

    def test_bad_oracle_name_rejected(self, capsys):
        from repro.cli import main_fuzz

        with pytest.raises(SystemExit):
            main_fuzz(["--oracle", "nonesuch", "--count", "1"])


class TestWriteJsonHelper:
    def test_writes_sorted_keys_with_newline(self, tmp_path, capsys):
        from repro.bench.emit import write_json

        out = tmp_path / "doc.json"
        write_json({"b": 1, "a": 2}, str(out), summary="wrote it")
        text = out.read_text()
        assert text.endswith("\n")
        assert text.index('"a"') < text.index('"b"')
        assert "wrote it" in capsys.readouterr().out

    def test_stdout_skips_summary(self, capsys):
        from repro.bench.emit import write_json

        write_json({"k": 1}, "-", summary="should not print")
        output = capsys.readouterr().out
        assert json.loads(output) == {"k": 1}
        assert "should not print" not in output
