"""repro.fuzz.shrink: planted bugs minimize to known reproducers.

The shrinker is fully deterministic (no RNG), so for a planted bug the
minimized program is a *fixed* artifact we can assert exactly; corpus
dedup relies on this.
"""

from repro.fuzz.corpus import Corpus
from repro.fuzz.shrink import shrink
from repro.prolog.program import Program

#: A planted bug among distractors: the failure is "a q/1 clause with
#: argument boom exists".  Everything else is noise the shrinker must
#: strip.
PLANTED = (
    "p(a).\n"
    "p(b) :- r(1), r(2).\n"
    "q(boom) :- p(a), p(b).\n"
    "q(ok).\n"
    "r(X) :- p(a).\n"
    "s([1, 2, 3], f(g(h))).\n"
)


def _has_boom(text: str) -> bool:
    program = Program.from_text(text)
    predicate = program.predicates.get(("q", 1))
    if predicate is None:
        return False
    for clause in predicate.clauses:
        if "boom" in str(clause.head):
            return True
    return False


class TestPlantedBug:
    def test_minimizes_to_single_clause(self):
        result = shrink(PLANTED, _has_boom)
        assert result.clauses_after == 1
        assert result.source == "q(boom).\n"
        assert result.accepted > 0

    def test_deterministic(self):
        first = shrink(PLANTED, _has_boom)
        second = shrink(PLANTED, _has_boom)
        assert first.source == second.source
        assert first.to_dict() == second.to_dict()

    def test_non_failing_input_returned_unshrunk(self):
        result = shrink("p(a).\np(b).\n", _has_boom)
        assert result.clauses_after == result.clauses_before == 2
        assert result.accepted == 0

    def test_attempt_cap_respected(self):
        result = shrink(PLANTED, _has_boom, max_attempts=3)
        assert result.attempts <= 3
        # whatever it managed must still fail
        assert _has_boom(result.source)


class TestGoalAndTermReduction:
    def test_body_goals_dropped(self):
        # failure only needs the head; the body goals must go
        source = "q(boom) :- p(a), p(b), p(c).\np(a).\np(b).\np(c).\n"
        result = shrink(source, _has_boom)
        assert result.source == "q(boom).\n"

    def test_terms_simplified(self):
        # failure: any t/2 clause present; its fat arguments must
        # simplify to the smallest value of their shape — [] for
        # lists, a for everything else
        def has_t(text):
            return ("t", 2) in Program.from_text(text).predicates

        source = "t([1, 2, 3], f(g(7), [a, b])).\n"
        result = shrink(source, has_t)
        assert result.source == "t([], a).\n"

    def test_lists_become_nil(self):
        def has_u(text):
            return ("u", 1) in Program.from_text(text).predicates

        result = shrink("u([9, 8, 7]).\n", has_u)
        assert result.source == "u([]).\n"


class TestShrinkWithCorpus:
    def test_reproducer_stored_and_deduped(self, tmp_path):
        corpus = Corpus(str(tmp_path / "corpus"))
        result = shrink(PLANTED, _has_boom)
        name, created = corpus.add(
            oracle="opt", seed=7, source=result.source,
            verdict_detail="planted", goals=["q(X)"], entries=["q(var)"],
            shrink_stats=result.to_dict(), original_source=PLANTED,
        )
        assert created
        # a different campaign seed shrinking to the same program dedups
        again, created_again = corpus.add(
            oracle="opt", seed=99, source=result.source,
            verdict_detail="planted", goals=["q(X)"], entries=["q(var)"],
        )
        assert not created_again
        assert again == name
        [reproducer] = corpus.entries()
        assert reproducer.source == "q(boom).\n"
        assert reproducer.meta["shrink"]["clauses_after"] == 1
        assert (tmp_path / "corpus" / name / "original.pl").exists()
        [(label, source, goals, entries)] = corpus.seed_sources()
        assert label == f"corpus:{name}"
        assert goals == ["q(X)"] and entries == ["q(var)"]
