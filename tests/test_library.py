"""Tests for the Prolog library predicates (on both engines)."""

import pytest

from repro.prolog import Solver, parse_term, term_to_text
from repro.prolog.library import library_program, with_library
from repro.wam import Machine, compile_program

DUMMY = "dummy_marker."


def run_lib(goal_text, engine="wam", program_text=DUMMY, limit=50):
    program = with_library(program_text)
    if engine == "wam":
        source = Machine(compile_program(program))
        solutions = source.run(parse_term(goal_text))
    else:
        source = Solver(program)
        solutions = source.solve(parse_term(goal_text))
    results = []
    for solution in solutions:
        results.append({k: term_to_text(v) for k, v in solution.items()})
        if len(results) >= limit:
            break
    return results


@pytest.mark.parametrize("engine", ["wam", "solver"])
class TestListPredicates:
    def test_append(self, engine):
        assert run_lib("append([1], [2, 3], R)", engine) == [{"R": "[1, 2, 3]"}]

    def test_append_splits(self, engine):
        assert len(run_lib("append(X, Y, [a, b])", engine)) == 3

    def test_member(self, engine):
        assert [s["X"] for s in run_lib("member(X, [a, b])", engine)] == [
            "a",
            "b",
        ]

    def test_memberchk_deterministic(self, engine):
        assert run_lib("memberchk(a, [a, a, a])", engine) == [{}]

    def test_reverse(self, engine):
        assert run_lib("reverse([1, 2, 3], R)", engine) == [{"R": "[3, 2, 1]"}]

    def test_length(self, engine):
        assert run_lib("length([a, b, c], N)", engine) == [{"N": "3"}]

    def test_nth0_nth1(self, engine):
        assert run_lib("nth0(1, [a, b, c], E)", engine) == [{"E": "b"}]
        assert run_lib("nth1(1, [a, b, c], E)", engine) == [{"E": "a"}]

    def test_last(self, engine):
        assert run_lib("last([1, 2, 3], X)", engine) == [{"X": "3"}]

    def test_select(self, engine):
        results = run_lib("select(X, [1, 2, 3], R)", engine)
        assert {s["X"] for s in results} == {"1", "2", "3"}

    def test_permutation_count(self, engine):
        assert len(run_lib("permutation([1, 2, 3], P)", engine)) == 6

    def test_between(self, engine):
        assert [s["X"] for s in run_lib("between(2, 5, X)", engine)] == [
            "2",
            "3",
            "4",
            "5",
        ]

    def test_sum_list(self, engine):
        assert run_lib("sum_list([1, 2, 3, 4], S)", engine) == [{"S": "10"}]

    def test_max_min_list(self, engine):
        assert run_lib("max_list([3, 9, 2], M)", engine) == [{"M": "9"}]
        assert run_lib("min_list([3, 9, 2], M)", engine) == [{"M": "2"}]

    def test_msort(self, engine):
        assert run_lib("msort([3, 1, 2, 1], S)", engine) == [
            {"S": "[1, 1, 2, 3]"}
        ]


class TestLibraryMerging:
    def test_program_overrides_library(self):
        text = "member(X, _) :- X = always."
        results = run_lib("member(X, [a])", "solver", program_text=text)
        assert results == [{"X": "always"}]

    def test_library_program_parses(self):
        program = library_program()
        assert program.predicate(("append", 3)) is not None

    def test_library_analyzable(self):
        from repro.analysis import Analyzer

        result = Analyzer(with_library(DUMMY)).analyze(
            ["append(glist, glist, var)"]
        )
        types = [
            t for t in result.success_types(("append", 3)) if t is not None
        ]
        assert len(types) == 3
