"""Tests for the analysis-driven source linter (repro.lint).

One fixture program per rule code, plus unit tests for the shared
Diagnostic/LintReport machinery and the driver's error handling
(``E000`` analysis failures, ``E001`` syntax errors).
"""

import pytest

from repro.lint import LintOptions, lint_file, lint_program, lint_source
from repro.lint.diagnostics import Diagnostic, LintReport
from repro.lint.rules import RULES
from repro.prolog.program import Program


def lint(text, entries, **kwargs):
    return lint_program(text, entries, file="test.pl", **kwargs)


# ----------------------------------------------------------------------
# Rule fixtures, one per code.


class TestSingletons:
    def test_w002_fires(self):
        report = lint("p(X) :- q(X, Unused).\nq(a, b).\n", ["p(g)"])
        (diagnostic,) = report.by_code("W002")
        assert "'Unused'" in diagnostic.message
        assert diagnostic.predicate == ("p", 1)
        assert diagnostic.position == (1, 1)

    def test_underscore_prefix_is_silent(self):
        report = lint("p(X) :- q(X, _Unused).\nq(a, b).\n", ["p(g)"])
        assert report.by_code("W002") == []

    def test_repeated_variable_is_silent(self):
        report = lint("p(X, X).\n", ["p(g, g)"])
        assert report.by_code("W002") == []


class TestDeadCode:
    def test_w003_unreachable_predicate(self):
        report = lint("main.\norphan(a).\n", ["main"])
        (diagnostic,) = report.by_code("W003")
        assert diagnostic.predicate == ("orphan", 1)
        assert diagnostic.position == (2, 1)

    def test_w004_dead_clause(self):
        report = lint(
            "sel(f(X), X).\nsel(g(X), X).\nmain(R) :- sel(f(1), R).\n",
            ["main(var)"],
        )
        (diagnostic,) = report.by_code("W004")
        assert diagnostic.predicate == ("sel", 2)
        assert "clause 2" in diagnostic.message
        assert diagnostic.position == (2, 1)

    def test_w005_never_succeeds(self):
        report = lint("top :- never(1).\nnever(_) :- fail.\n", ["top"])
        # Failure propagates: never/1 can't succeed, so neither can top/0.
        assert {d.predicate for d in report.by_code("W005")} == {
            ("never", 1),
            ("top", 0),
        }


class TestArithmeticModes:
    def test_e006_unbound_operand(self):
        report = lint("bad(X) :- Y is X + 1, use(Y).\nuse(_).\n", ["bad(var)"])
        (diagnostic,) = report.by_code("E006")
        assert diagnostic.severity == "error"
        assert "'X'" in diagnostic.message
        assert report.has_errors

    def test_body_first_occurrence_is_free(self):
        report = lint("bad :- Y is Z + 1, use(Y, Z).\nuse(_, _).\n", ["bad"])
        (diagnostic,) = report.by_code("E006")
        assert "'Z'" in diagnostic.message

    def test_ground_call_pattern_is_silent(self):
        report = lint("ok(X) :- Y is X + 1, use(Y).\nuse(_).\n", ["ok(int)"])
        assert report.by_code("E006") == []

    def test_is_grounds_left_hand_side(self):
        report = lint(
            "ok(X) :- Y is X + 1, Z is Y + 1, use(Z).\nuse(_).\n",
            ["ok(int)"],
        )
        assert report.by_code("E006") == []

    def test_user_call_grounds_output(self):
        report = lint(
            "ok(X) :- len(X, N), M is N + 1, use(M).\n"
            "len([], 0).\nlen([_|T], N) :- len(T, M), N is M + 1.\n"
            "use(_).\n",
            ["ok(glist)"],
        )
        assert report.by_code("E006") == []


class TestFailingGoals:
    def test_w007_fires_at_call_site(self):
        report = lint("top :- never(1), write(done).\nnever(_) :- fail.\n", ["top"])
        (diagnostic,) = report.by_code("W007")
        assert diagnostic.predicate == ("top", 0)
        assert "never(1)" in diagnostic.message
        assert diagnostic.position == (1, 1)


class TestDeterminism:
    def test_i008_first_argument_indexing(self):
        report = lint(
            "det(f(X), X).\ndet(g(X), X).\nmain(R) :- det(f(1), R).\n",
            ["main(var)"],
        )
        (diagnostic,) = report.by_code("I008")
        assert diagnostic.severity == "info"
        assert diagnostic.predicate == ("det", 2)

    def test_no_hint_when_patterns_overlap(self):
        report = lint(
            "det(f(X), X).\ndet(g(X), X).\nmain(R) :- det(A, R), mk(A).\nmk(_).\n",
            ["main(var)"],
        )
        assert report.by_code("I008") == []


class TestUndefined:
    def test_w009_fires(self):
        report = lint("w(X) :- missing_predicate(X).\n", ["w(g)"])
        (diagnostic,) = report.by_code("W009")
        assert "missing_predicate/1" in diagnostic.message

    def test_builtins_are_known(self):
        report = lint("w(X) :- write(X), nl, X > 0.\n", ["w(int)"])
        assert report.by_code("W009") == []

    def test_control_constructs_are_walked(self):
        report = lint("w(X) :- ( X = a -> missing(X) ; true ).\n", ["w(g)"])
        assert [d.code for d in report.by_code("W009")] == ["W009"]


# ----------------------------------------------------------------------
# Driver error handling.


class TestDriver:
    def test_e000_analysis_failure(self):
        report = lint(
            "p :- q.\n", ["p"], options=LintOptions(on_undefined="error")
        )
        (diagnostic,) = report.by_code("E000")
        assert diagnostic.severity == "error"
        assert report.has_errors

    def test_e001_syntax_error(self, tmp_path):
        path = tmp_path / "broken.pl"
        path.write_text("p(a.\n")
        report = lint_file(str(path), ["p(g)"])
        (diagnostic,) = report.by_code("E001")
        assert diagnostic.severity == "error"
        assert diagnostic.file == str(path)
        assert report.has_errors

    def test_clean_program(self):
        report = lint(
            "nrev([], []).\nnrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).\n"
            "app([], L, L).\napp([H|T], L, [H|R]) :- app(T, L, R).\n",
            ["nrev(glist, var)"],
        )
        assert report.diagnostics == []
        assert report.summary == "clean"
        assert not report.has_errors

    def test_no_source_flag(self):
        options = LintOptions(source=False)
        report = lint("main.\norphan(a).\n", ["main"], options=options)
        assert report.diagnostics == []

    def test_lint_source_without_result(self):
        program = Program.from_text("p(X) :- q(X, Unused).\nq(a, b).\n")
        diagnostics = lint_source(program, None, file="f.pl")
        assert {d.code for d in diagnostics} == {"W002"}


# ----------------------------------------------------------------------
# Diagnostic / LintReport machinery.


class TestDiagnostics:
    def test_to_text(self):
        diagnostic = Diagnostic(
            code="W002",
            severity="warning",
            message="singleton variable 'X'",
            file="f.pl",
            position=(3, 7),
            predicate=("p", 2),
        )
        assert (
            diagnostic.to_text()
            == "f.pl:3:7: warning: W002: singleton variable 'X' [p/2]"
        )

    def test_unknown_position_renders_question_marks(self):
        diagnostic = Diagnostic(code="E101", severity="error", message="m")
        assert diagnostic.location == "?:?:?"
        assert diagnostic.to_dict()["line"] is None

    def test_invalid_severity_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic(code="X", severity="fatal", message="m")

    def test_report_sort_and_dedup(self):
        a = Diagnostic("W002", "warning", "a", file="f.pl", position=(2, 1))
        b = Diagnostic("W003", "warning", "b", file="f.pl", position=(1, 1))
        unplaced = Diagnostic("E101", "error", "c", file="f.pl")
        report = LintReport()
        report.extend([a, b, a, unplaced])
        assert len(report.diagnostics) == 3
        report.sort()
        assert report.diagnostics == [b, a, unplaced]

    def test_summary_counts(self):
        report = LintReport()
        report.extend(
            [
                Diagnostic("E101", "error", "x"),
                Diagnostic("W002", "warning", "y"),
                Diagnostic("W003", "warning", "z"),
                Diagnostic("I008", "info", "w"),
            ]
        )
        assert report.summary == "1 error, 2 warnings, 1 info"
        assert report.to_dict()["counts"] == {
            "info": 1,
            "warning": 2,
            "error": 1,
        }

    def test_registry_covers_all_source_codes(self):
        codes = {rule.code for rule in RULES}
        assert codes == {
            "W002", "W003", "W004", "W005", "E006", "W007", "I008", "W009",
        }
