"""Tests for the WAM bytecode verifier (repro.lint.verifier).

Two halves, mirroring the verifier's contract:

* on compiler-emitted code it must stay silent — every benchmark program
  compiles to code with zero diagnostics, with and without environment
  trimming;
* on hand-assembled bad sequences every ``E1xx`` code fires.
"""

import pytest

from repro.bench.programs import BENCHMARKS
from repro.lint import verify_code, verify_compiled
from repro.prolog.program import Program
from repro.wam.code import CodeArea, PredicateCode
from repro.wam.compile import CompilerOptions, compile_program
from repro.wam.instructions import (
    Instr,
    allocate,
    call,
    deallocate,
    execute,
    fail_instr,
    get_constant,
    get_variable,
    halt_instr,
    proceed,
    put_constant,
    put_value,
    put_variable,
    switch_on_term,
    try_me_else,
    trust_me,
    xreg,
    yreg,
)


def build(instructions, indicator=("p", 1)):
    """Link one hand-assembled predicate after the three service slots."""
    code = CodeArea()
    code.instructions.extend([halt_instr(), fail_instr(), proceed()])
    code.link([PredicateCode(indicator, list(instructions), 1)])
    return code


def codes_of(code):
    return {diagnostic.code for diagnostic in verify_code(code)}


# ----------------------------------------------------------------------
# Known-good code: the whole benchmark suite verifies clean.


class TestCompilerEmittedCode:
    @pytest.mark.parametrize(
        "bench", BENCHMARKS, ids=[bench.name for bench in BENCHMARKS]
    )
    @pytest.mark.parametrize("trimming", [True, False], ids=["trim", "notrim"])
    def test_benchmark_verifies_clean(self, bench, trimming):
        program = Program.from_text(bench.source)
        compiled = compile_program(
            program, CompilerOptions(environment_trimming=trimming)
        )
        assert verify_compiled(compiled) == []

    def test_diagnostics_carry_source_positions(self, tmp_path):
        program = Program.from_text("p(X) :- q(X).\nq(a).\n")
        compiled = compile_program(program)
        # Clean code produces no diagnostics, but the position table the
        # verifier builds must cover every user predicate.
        assert verify_compiled(compiled, file="f.pl") == []
        positions = {
            indicator: clause.position
            for indicator, predicate in compiled.program.predicates.items()
            for clause in predicate.clauses[:1]
        }
        assert positions[("p", 1)] == (1, 1)
        assert positions[("q", 1)] == (2, 1)


# ----------------------------------------------------------------------
# Hand-assembled bad sequences: each code fires.


class TestBadSequences:
    def test_clean_hand_assembled(self):
        code = build([get_constant("a", 1), proceed()])
        assert verify_code(code) == []

    def test_e101_x_read_before_write(self):
        code = build([put_value(xreg(5), 1), execute(("q", 1))])
        assert codes_of(code) == {"E101"}

    def test_e101_suppresses_cascades(self):
        code = build(
            [put_value(xreg(5), 1), put_value(xreg(5), 2), execute(("q", 2))]
        )
        diagnostics = verify_code(code)
        assert [d.code for d in diagnostics] == ["E101"]

    def test_e102_y_without_environment(self):
        code = build([get_variable(yreg(1), 1), proceed()])
        assert codes_of(code) == {"E102"}

    def test_e102_y_beyond_slot_count(self):
        code = build(
            [
                allocate(1),
                get_variable(yreg(2), 1),
                deallocate(),
                proceed(),
            ]
        )
        assert codes_of(code) == {"E102"}

    def test_e103_y_read_before_init(self):
        code = build(
            [
                allocate(1),
                put_value(yreg(1), 1),
                deallocate(),
                execute(("q", 1)),
            ]
        )
        assert codes_of(code) == {"E103"}

    def test_e103_y_read_after_trimming(self):
        code = build(
            [
                allocate(2),
                get_variable(yreg(1), 1),
                get_variable(yreg(2), 1),
                call(("q", 0), 1),  # live=1 trims Y2 away
                put_value(yreg(2), 1),
                deallocate(),
                execute(("r", 1)),
            ]
        )
        assert codes_of(code) == {"E103"}

    def test_e104_y_after_deallocate(self):
        code = build(
            [
                allocate(1),
                get_variable(yreg(1), 1),
                deallocate(),
                put_value(yreg(1), 1),
                execute(("q", 1)),
            ]
        )
        assert codes_of(code) == {"E104"}

    def test_e105_escaping_branch_target(self):
        code = build([try_me_else(999), proceed(), trust_me(), proceed()])
        assert "E105" in codes_of(code)

    def test_e105_fail_target_is_legal(self):
        code = build([switch_on_term(-1, -1, -1, -1)])
        assert verify_code(code) == []

    def test_e106_fall_through(self):
        code = build([put_constant("a", 1)])
        assert codes_of(code) == {"E106"}

    def test_e107_double_allocate(self):
        code = build([allocate(1), allocate(1), deallocate(), proceed()])
        assert codes_of(code) == {"E107"}

    def test_e107_deallocate_without_environment(self):
        code = build([deallocate(), proceed()])
        assert codes_of(code) == {"E107"}

    def test_e107_proceed_with_environment(self):
        code = build([allocate(1), proceed()])
        assert codes_of(code) == {"E107"}

    def test_e107_execute_with_environment(self):
        code = build([allocate(1), execute(("q", 1))])
        assert codes_of(code) == {"E107"}

    def test_e108_unknown_opcode(self):
        code = build([Instr("put_unsafe_value", (yreg(1), 1)), proceed()])
        assert codes_of(code) == {"E108"}

    def test_diagnostics_are_errors_with_predicate(self):
        code = build([deallocate(), proceed()], indicator=("broken", 1))
        (diagnostic,) = verify_code(code, file="asm.pl")
        assert diagnostic.severity == "error"
        assert diagnostic.predicate == ("broken", 1)
        assert diagnostic.file == "asm.pl"
        assert "deallocate" in diagnostic.message
