"""Tests for the list-awareness ablation (the α-list type switch)."""

from repro.analysis import analyze
from repro.domain import tree_to_text
from tests.conftest import APPEND_NREV


def success_text(result, indicator, position):
    tree = result.success_types(indicator)[position]
    return tree_to_text(tree) if tree is not None else "fail"


class TestListAware:
    def test_aware_keeps_list_types(self):
        result = analyze(APPEND_NREV, "nrev(glist, var)")
        assert success_text(result, ("nrev", 2), 1) == "g-list"

    def test_blind_degrades_to_simple_sorts(self):
        result = analyze(
            APPEND_NREV, "nrev(list(g), var)", list_aware=False
        )
        text = success_text(result, ("nrev", 2), 1)
        assert "list" not in text

    def test_blind_still_sound_groundness(self):
        from repro.domain import GROUND_T, tree_leq

        result = analyze(
            APPEND_NREV, "nrev(list(g), var)", list_aware=False
        )
        tree = result.success_types(("nrev", 2))[1]
        # Precision drops but groundness must survive.
        assert tree_leq(tree, GROUND_T)

    def test_blind_nil_is_atom(self):
        result = analyze("p([]).", "p(var)", list_aware=False)
        assert success_text(result, ("p", 1), 0) == "atom"

    def test_aware_nil_is_empty_list(self):
        result = analyze("p([]).", "p(var)")
        assert success_text(result, ("p", 1), 0) == "[]"

    def test_blind_terminates_on_benchmarks(self):
        from repro.bench import get_benchmark

        for name in ["nreverse", "qsort", "serialise"]:
            bench = get_benchmark(name)
            result = analyze(bench.source, bench.entry, list_aware=False)
            assert result.iterations < 30

    def test_blind_coarser_or_equal_where_comparable(self):
        from repro.domain import tree_leq

        aware = analyze(APPEND_NREV, "app(glist, glist, var)")
        blind = analyze(
            APPEND_NREV, "app(list(g), list(g), var)", list_aware=False
        )
        for fine, coarse in zip(
            aware.success_types(("app", 3)), blind.success_types(("app", 3))
        ):
            # Not pointwise-comparable in general (cons fragments), but
            # groundness must agree here.
            from repro.domain import GROUND_T

            assert tree_leq(fine, GROUND_T) == tree_leq(coarse, GROUND_T)
