"""Tests for WAM code listings."""

from repro.prolog import Program, parse_term
from repro.wam import compile_program, disassemble
from repro.wam.instructions import (
    Instr,
    Label,
    call,
    get_constant,
    get_structure,
    get_variable,
    put_variable,
    switch_on_term,
    xreg,
    yreg,
)
from repro.wam.listing import format_instruction


class TestFormatInstruction:
    def test_get_constant(self):
        instr = get_constant(parse_term("a"), 1)
        assert format_instruction(instr) == "get_constant a, A1"

    def test_quoted_constant(self):
        instr = get_constant(parse_term("'hello world'"), 2)
        assert format_instruction(instr) == "get_constant 'hello world', A2"

    def test_get_structure_with_arity_hint(self):
        instr = get_structure(("f", 2), xreg(1))
        assert format_instruction(instr, arity=2) == "get_structure f/2, A1"
        assert format_instruction(instr) == "get_structure f/2, X1"

    def test_registers(self):
        assert format_instruction(get_variable(yreg(3), 1)) == (
            "get_variable Y3, A1"
        )
        assert format_instruction(put_variable(xreg(5), 2)) == (
            "put_variable X5, A2"
        )

    def test_call_with_live_count(self):
        assert format_instruction(call(("foo", 2), 3)) == "call foo/2, 3"

    def test_switch(self):
        instr = switch_on_term(Label("v"), -1, Label("l"), -1)
        text = format_instruction(instr)
        assert text.startswith("switch_on_term")
        assert "-1" in text

    def test_no_arg_ops(self):
        assert format_instruction(Instr("proceed", ())) == "proceed"
        assert format_instruction(Instr("trust_me", ())) == "trust_me"


class TestDisassemble:
    def test_whole_program(self, append_nrev):
        compiled = compile_program(Program.from_text(append_nrev))
        text = disassemble(compiled.code)
        assert "app/3:" in text
        assert "nrev/2:" in text
        assert "halt" in text

    def test_single_predicate(self, append_nrev):
        compiled = compile_program(Program.from_text(append_nrev))
        text = disassemble(compiled.code, ("app", 3))
        assert "app/3:" in text
        assert "nrev/2:" not in text

    def test_addresses_present(self, append_nrev):
        compiled = compile_program(Program.from_text(append_nrev))
        entry = compiled.code.entry[("app", 3)]
        assert f"{entry:5d}" in disassemble(compiled.code, ("app", 3))

    def test_arity_hint_applied(self):
        compiled = compile_program(Program.from_text("p(a, b)."))
        text = disassemble(compiled.code, ("p", 2))
        assert "A1" in text and "A2" in text
