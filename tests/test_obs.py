"""repro.obs: metrics, tracing, and the two guarantees they come with.

The contracts pinned here, in the order docs/observability.md states
them:

* metrics are *observational* — an analysis run with a registry
  attached produces a ``stable_dict`` identical to one without;
* metric values are exact, not sampled — the tiny-program tests below
  assert hand-counted values;
* traces nest strictly (``validate_nesting`` accepts every trace the
  instrumented stack writes, and rejects hand-made violations);
* a supervisor's registry is the sum of its workers' shipped deltas.
"""

import json

import pytest

from repro.analysis.driver import Analyzer
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Tracer,
    format_profile,
    instruction_mix,
    metric_key,
    opcode_class,
    read_trace,
    split_key,
    table_hit_rate,
    validate_nesting,
)
from repro.prolog.program import Program
from repro.serve import AnalysisService, ServiceConfig

NREV = """
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).
append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).
"""

ENTRY = "nrev(glist, var)"


def _value(snapshot, key):
    return snapshot[key]["value"]


# ----------------------------------------------------------------------
# The registry itself.


class TestRegistry:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        registry.gauge("g").set_max(7)
        registry.gauge("g").set_max(3)  # peaks never go down
        registry.histogram("h").observe(0.002)
        registry.histogram("h").observe(40.0)  # overflow bucket
        snapshot = registry.snapshot()
        assert _value(snapshot, "c") == 5
        assert _value(snapshot, "g") == 7
        assert snapshot["h"]["count"] == 2
        assert snapshot["h"]["counts"][-1] == 1  # the +inf bucket
        assert snapshot["h"]["sum"] == pytest.approx(40.002)

    def test_labels_render_sorted_and_address_distinct_metrics(self):
        registry = MetricsRegistry()
        registry.counter("hits", op="analyze", kind="full").inc()
        registry.counter("hits", op="stats").inc(2)
        snapshot = registry.snapshot()
        assert _value(snapshot, "hits{kind=full,op=analyze}") == 1
        assert _value(snapshot, "hits{op=stats}") == 2
        assert metric_key("hits", {"op": "analyze", "kind": "full"}) == \
            "hits{kind=full,op=analyze}"
        assert split_key("hits{kind=full,op=analyze}") == \
            ("hits", {"kind": "full", "op": "analyze"})
        assert split_key("hits") == ("hits", {})

    def test_same_object_returned_so_hot_sites_can_bind_once(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("y") is registry.gauge("y")

    def test_snapshot_is_json_able_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc()
        snapshot = registry.snapshot()
        assert list(snapshot) == sorted(snapshot)
        json.dumps(snapshot)  # must not raise

    def test_delta_ships_only_changes(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.histogram("h").observe(0.01)
        first = registry.delta()
        assert first["c"]["value"] == 3
        assert first["h"]["count"] == 1
        assert registry.delta() == {}  # idle: nothing changed
        registry.counter("c").inc(2)
        second = registry.delta()
        assert list(second) == ["c"]
        assert second["c"]["value"] == 2  # the increment, not the total

    def test_merge_adds_counters_maxes_gauges_adds_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        a.gauge("g").set_max(5)
        a.histogram("h").observe(0.01)
        b.counter("c").inc(3)
        b.gauge("g").set_max(9)
        b.histogram("h").observe(0.01)
        b.merge(a.snapshot())
        snapshot = b.snapshot()
        assert _value(snapshot, "c") == 5
        assert _value(snapshot, "g") == 9
        assert snapshot["h"]["count"] == 2

    def test_merge_rejects_kind_and_bounds_mismatches(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        with pytest.raises(ValueError):
            registry.merge({"x": {"type": "gauge", "value": 1}})
        registry.histogram("h", bounds=(1.0, 2.0)).observe(0.5)
        with pytest.raises(ValueError):
            registry.merge({"h": {
                "type": "histogram", "bounds": [1.0],
                "counts": [0, 0], "sum": 0.0, "count": 0,
            }})
        with pytest.raises(ValueError):
            registry.merge({"y": {"type": "mystery", "value": 1}})

    def test_worker_style_delta_merge_equals_direct_counting(self):
        # The supervisor pipeline in miniature: deltas shipped after
        # every request must sum to the worker's own totals.
        worker, supervisor = MetricsRegistry(), MetricsRegistry()
        for n in (1, 4, 2):
            worker.counter("req").inc(n)
            worker.gauge("peak").set_max(n)
            supervisor.merge(worker.delta())
        merged = supervisor.snapshot()
        assert _value(merged, "req") == 7
        assert _value(merged, "peak") == 4

    def test_histogram_quantile_is_a_bucket_upper_bound(self):
        histogram = Histogram(bounds=(0.1, 1.0, 10.0))
        for value in (0.05, 0.05, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.quantile(0.5) == 0.1
        assert histogram.quantile(0.99) == 10.0
        assert Histogram().quantile(0.5) == 0.0

    def test_opcode_classes(self):
        assert opcode_class("get_structure") == "get"
        assert opcode_class("put_value") == "put"
        assert opcode_class("unify_void") == "unify"
        assert opcode_class("proceed") == "control"
        assert opcode_class("switch_on_term") == "index"
        assert opcode_class("no_such_op") == "other"


# ----------------------------------------------------------------------
# Instrumented analysis: hand-counted values on a tiny program.


class TestAnalysisMetrics:
    def analyze(self, text, entry):
        registry = MetricsRegistry()
        result = Analyzer(
            Program.from_text(text), metrics=registry
        ).analyze([entry])
        return result, registry.snapshot()

    def test_single_fact_hand_counted(self):
        # p(a). with entry p(var): pass 1 explores (lookup misses, the
        # entry is created, the success pattern lands), pass 2 re-runs
        # and finds the table unchanged (lookup hits).  Each pass costs
        # get_constant + proceed + the query stub's halt = 3.
        result, snapshot = self.analyze("p(a).", "p(var)")
        assert _value(snapshot, "analysis.iterations") == 2
        assert result.iterations == 2
        assert _value(snapshot, "wam.instructions") == 6
        assert _value(snapshot, "wam.instructions") == \
            result.instructions_executed
        assert _value(snapshot, "wam.instructions.op{op=get_constant}") == 2
        assert _value(snapshot, "wam.instructions.op{op=proceed}") == 2
        assert _value(snapshot, "wam.instructions.op{op=halt}") == 2
        assert _value(snapshot, "wam.instructions.class{class=get}") == 2
        assert _value(snapshot, "wam.instructions.class{class=control}") == 4
        assert _value(snapshot, "analysis.predicate.calls{pred=p/1}") == 2
        # halt runs after p/1's frame closes, so only 4 of 6 attribute.
        assert _value(
            snapshot, "analysis.predicate.instructions{pred=p/1}"
        ) == 4
        assert _value(snapshot, "table.lookups") == 2
        assert _value(snapshot, "table.misses") == 1
        assert _value(snapshot, "table.hits") == 1
        assert _value(snapshot, "table.entries.created") == 1
        assert _value(snapshot, "analysis.specs{status=exact}") == 1
        assert snapshot["analysis.entry.seconds"]["count"] == 1

    def test_class_and_op_breakdowns_sum_to_the_total(self):
        _, snapshot = self.analyze(NREV, ENTRY)
        total = _value(snapshot, "wam.instructions")
        assert total > 0
        by_class = sum(
            data["value"] for key, data in snapshot.items()
            if key.startswith("wam.instructions.class{")
        )
        by_op = sum(
            data["value"] for key, data in snapshot.items()
            if key.startswith("wam.instructions.op{")
        )
        assert by_class == total
        assert by_op == total

    def test_table_accounting_is_consistent(self):
        _, snapshot = self.analyze(NREV, ENTRY)
        assert _value(snapshot, "table.lookups") == \
            _value(snapshot, "table.hits") + _value(snapshot, "table.misses")
        assert _value(snapshot, "table.entries.created") <= \
            _value(snapshot, "table.misses")
        assert _value(snapshot, "analysis.unify.calls") > 0
        assert _value(snapshot, "analysis.frames.peak") >= 1

    def test_metrics_never_change_the_result(self):
        plain = Analyzer(Program.from_text(NREV)).analyze([ENTRY])
        registry = MetricsRegistry()
        instrumented = Analyzer(
            Program.from_text(NREV), metrics=registry
        ).analyze([ENTRY])
        assert instrumented.stable_dict() == plain.stable_dict()
        assert len(registry) > 0  # the registry did observe the run


# ----------------------------------------------------------------------
# The tracer.


class TestTracer:
    def test_round_trip_and_nesting(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with Tracer(path) as tracer:
            with tracer.span("request", op="analyze"):
                with tracer.span("entry_spec", spec="p(var)"):
                    tracer.event("fixpoint_iteration", pass_number=1)
                tracer.event("outer_event")
        records = read_trace(path)
        begun = validate_nesting(records)
        assert [r["kind"] for r in records] == \
            ["begin", "begin", "event", "end", "event", "end"]
        assert begun[2]["parent"] == 1
        assert records[2]["span"] == 2  # event binds the innermost span
        assert records[4]["span"] == 1
        end = records[3]
        assert end["elapsed"] >= 0

    def test_close_ends_unclosed_spans_as_aborted(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(path)
        tracer.begin("request")
        tracer.begin("entry_spec")
        tracer.close()
        records = read_trace(path)
        validate_nesting(records)  # well formed despite the crash shape
        ends = [r for r in records if r["kind"] == "end"]
        assert len(ends) == 2
        assert all(r["attrs"]["aborted"] for r in ends)

    def test_span_records_the_exception(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(path)
        with pytest.raises(RuntimeError):
            with tracer.span("request"):
                raise RuntimeError("boom")
        tracer.close()
        end = read_trace(path)[-1]
        assert "boom" in end["attrs"]["error"]

    def test_validate_nesting_rejects_violations(self):
        begin = {"ts": 0.0, "kind": "begin", "span": 1, "parent": None,
                 "name": "a"}
        end = {"ts": 1.0, "kind": "end", "span": 1, "name": "a"}
        with pytest.raises(ValueError, match="unclosed"):
            validate_nesting([begin])
        with pytest.raises(ValueError, match="open stack"):
            validate_nesting([end])
        with pytest.raises(ValueError, match="backwards"):
            validate_nesting([begin, dict(end, ts=-1.0)])
        with pytest.raises(ValueError, match="reused"):
            validate_nesting([begin, end, dict(begin, ts=2.0)])
        stray_event = {"ts": 0.5, "kind": "event", "span": 99, "name": "e"}
        with pytest.raises(ValueError, match="innermost"):
            validate_nesting([begin, stray_event, end])

    def test_end_without_open_span_raises(self):
        tracer = Tracer("-")
        with pytest.raises(ValueError):
            tracer.end()


# ----------------------------------------------------------------------
# The serve stack: the metrics op, stats, and traced requests.


class TestServiceObservability:
    def test_metrics_op_and_stats_expose_the_registry(self):
        service = AnalysisService(ServiceConfig())
        ok = service.handle(
            {"op": "analyze", "text": NREV, "entries": [ENTRY]}
        )
        assert ok["ok"]
        answer = service.handle({"op": "metrics", "id": 7})
        assert answer["ok"] and answer["id"] == 7
        snapshot = answer["metrics"]
        assert _value(snapshot, "serve.requests{op=analyze}") == 1
        assert _value(snapshot, "serve.cache{outcome=miss}") == 1
        assert _value(snapshot, "wam.instructions") > 0
        assert snapshot["serve.request.seconds"]["count"] >= 1
        stats = service.handle({"op": "stats"})
        assert "serve.requests{op=metrics}" in stats["stats"]["metrics"]

    def test_cache_outcomes_are_counted(self):
        service = AnalysisService(ServiceConfig())
        request = {"op": "analyze", "text": NREV, "entries": [ENTRY]}
        service.handle(request)
        service.handle(request)  # full-result fingerprint hit
        snapshot = service.metrics.snapshot()
        assert _value(snapshot, "serve.cache{outcome=miss}") == 1
        assert _value(snapshot, "serve.cache{outcome=hit}") == 1

    def test_errors_are_counted(self):
        service = AnalysisService(ServiceConfig())
        bad = service.handle({"op": "analyze", "text": ":- :-", "entries": []})
        assert not bad["ok"]
        assert _value(service.metrics.snapshot(), "serve.errors") == 1

    def test_traced_request_nests_spans(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(path)
        service = AnalysisService(ServiceConfig(), tracer=tracer)
        service.handle({"op": "analyze", "text": NREV, "entries": [ENTRY]})
        tracer.close()
        records = read_trace(path)
        begun = validate_nesting(records)
        names = {record["name"] for record in begun.values()}
        assert {"request", "entry_spec", "scc"} <= names
        request_span = next(
            r for r in begun.values() if r["name"] == "request"
        )
        assert request_span["parent"] is None
        assert request_span["attrs"]["op"] == "analyze"
        spec_spans = [r for r in begun.values() if r["name"] == "entry_spec"]
        assert all(r["parent"] == request_span["span"] for r in spec_spans)
        events = {r["name"] for r in records if r["kind"] == "event"}
        assert "discovery_pass" in events


# ----------------------------------------------------------------------
# Supervisor aggregation: the fleet view is the sum of worker deltas.


class TestSupervisorAggregation:
    def test_two_workers_sum_into_the_supervisor_registry(self):
        from repro.serve import Supervisor, SupervisorConfig

        supervisor = Supervisor(
            ServiceConfig(), SupervisorConfig(workers=2, max_retries=0)
        )
        try:
            request = {"op": "analyze", "text": NREV, "entries": [ENTRY]}
            for _ in range(3):
                assert supervisor.handle(dict(request))["ok"]
            answer = supervisor.handle({"op": "metrics"})
            assert answer["ok"]
            snapshot = answer["metrics"]
            # Shipped by the workers and merged here: each analyze was
            # served (and counted) by exactly one worker.
            assert _value(snapshot, "serve.requests{op=analyze}") == 3
            assert _value(snapshot, "wam.instructions") > 0
            # Counted by the supervisor itself.
            assert _value(snapshot, "serve.worker.requests{op=analyze}") == 3
            stats = supervisor.stats()
            assert stats["metrics"] == snapshot
        finally:
            supervisor.close()

    def test_worker_response_does_not_leak_the_wire_field(self):
        from repro.serve import Supervisor, SupervisorConfig

        supervisor = Supervisor(
            ServiceConfig(), SupervisorConfig(workers=1, max_retries=0)
        )
        try:
            response = supervisor.handle(
                {"op": "analyze", "text": NREV, "entries": [ENTRY]}
            )
            assert response["ok"]
            assert "_metrics" not in response
            invalidated = supervisor.handle({"op": "invalidate"})
            assert "_metrics" not in invalidated
        finally:
            supervisor.close()


# ----------------------------------------------------------------------
# Surfacing: the profile report and the CLI flags.


class TestProfileReport:
    def snapshot(self):
        registry = MetricsRegistry()
        Analyzer(Program.from_text(NREV), metrics=registry).analyze([ENTRY])
        return registry.snapshot()

    def test_report_helpers(self):
        snapshot = self.snapshot()
        mix = instruction_mix(snapshot)
        assert sum(mix.values()) == _value(snapshot, "wam.instructions")
        table = table_hit_rate(snapshot)
        assert table["lookups"] == table["hits"] + table["misses"]
        assert 0.0 <= table["hit_rate"] <= 1.0

    def test_format_profile_sections(self):
        text = format_profile(self.snapshot())
        assert "instruction mix" in text
        assert "hottest opcodes" in text
        assert "predicate cost" in text
        assert "extension table" in text
        assert "nrev/2" in text

    def test_cli_profile_flag(self, tmp_path, capsys):
        from repro.cli import main_analyze

        path = tmp_path / "prog.pl"
        path.write_text(NREV)
        assert main_analyze([str(path), ENTRY, "--profile"]) == 0
        out = capsys.readouterr().out
        assert "instruction mix" in out
        assert "predicate cost" in out

    def test_cli_profile_json_embeds_the_snapshot(self, tmp_path, capsys):
        from repro.cli import main_analyze

        path = tmp_path / "prog.pl"
        path.write_text(NREV)
        assert main_analyze([str(path), ENTRY, "--profile", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["metrics"]["wam.instructions"]["value"] > 0

    def test_cli_trace_out(self, tmp_path, capsys):
        from repro.cli import main_analyze

        path = tmp_path / "prog.pl"
        path.write_text(NREV)
        trace = tmp_path / "trace.jsonl"
        assert main_analyze([str(path), ENTRY, "--trace-out", str(trace)]) == 0
        capsys.readouterr()
        records = read_trace(str(trace))
        begun = validate_nesting(records)
        assert any(r["name"] == "entry_spec" for r in begun.values())
