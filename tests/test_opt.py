"""Tests for repro.opt: pipeline transforms, goal-derived entry specs,
translation validation, and the repro-optimize CLI.

The acceptance bar of the PR lives here: every Table 1 benchmark must
optimize to verifier-clean code with identical solutions, and so must
seeded random edits of those benchmarks (the property test).
"""

import json
import random

import pytest

from repro.analysis.driver import analyze
from repro.bench import BENCHMARKS, get_benchmark
from repro.bench.opt import DERIV_GROUP
from repro.fuzz.mutate import Mutator
from repro.opt import goal_entry_specs, optimize_program, validate
from repro.prolog.parser import parse_term
from repro.prolog.program import Program
from repro.prolog.terms import Atom, Struct, Var
from repro.wam.compile import compile_program


def _optimize(source, entries, goals, max_solutions=None):
    """Compile, analyze (entries + goal-derived specs), optimize,
    validate.  Returns ``(optimized, validation_report)``."""
    compiled = compile_program(Program.from_text(source))
    goal_terms = [parse_term(goal) for goal in goals]
    specs = list(entries)
    for goal in goal_terms:
        specs.extend(goal_entry_specs(compiled.program, goal))
    result = analyze(compiled, *specs)
    optimized = optimize_program(compiled, result)
    report = validate(
        compiled, optimized.compiled, goal_terms, max_solutions=max_solutions
    )
    return optimized, report


def _ops(optimized, indicator):
    """Opcodes of one predicate's optimized code region."""
    code = optimized.compiled.code
    start = code.entry[indicator]
    return [
        code.at(address).op
        for address in range(start, start + code.size_of(indicator))
    ]


class TestGoalEntrySpecs:
    PROGRAM = Program.from_text(
        "p(a).\nq(b, c).\nr(x, y, z).\nmain :- p(a).\n"
    )

    def _specs(self, goal):
        return goal_entry_specs(self.PROGRAM, parse_term(goal))

    def test_ground_argument_becomes_g(self):
        [spec] = self._specs("q(b, f(1))")
        assert spec == Struct("q", (Atom("g"), Atom("g")))

    def test_partial_term_becomes_nv(self):
        [spec] = self._specs("q(f(X), b)")
        assert spec.args[0] == Atom("nv")
        assert spec.args[1] == Atom("g")

    def test_fresh_variable_stays_itself(self):
        [spec] = self._specs("q(X, Y)")
        assert isinstance(spec.args[0], Var)
        assert isinstance(spec.args[1], Var)
        assert spec.args[0] is not spec.args[1]

    def test_variable_bound_by_earlier_conjunct_widens(self):
        first, second = self._specs("p(X), q(X, Y)")
        assert isinstance(first.args[0], Var)
        assert second.args[0] == Atom("any")
        assert isinstance(second.args[1], Var)

    def test_builtin_conjunct_contributes_no_spec_but_binds(self):
        # `is` is not a program predicate: no spec, but X is no longer
        # fresh when p sees it.
        [spec] = self._specs("X is 1 + 1, p(X)")
        assert spec == Struct("p", (Atom("any"),))

    def test_variable_buried_in_sibling_argument_widens(self):
        [spec] = self._specs("q(X, f(X))")
        assert spec.args[0] == Atom("any")
        assert spec.args[1] == Atom("nv")

    def test_atom_goal_for_zero_arity_predicate(self):
        assert self._specs("main") == [Atom("main")]

    def test_unknown_predicate_is_skipped(self):
        assert self._specs("nonesuch(X)") == []


class TestTransforms:
    def test_forced_first_argument_indexing(self):
        # The baseline compiler refuses to index d/2: clause 3 is
        # variable-keyed.  With every call ground in the first argument
        # the optimizer forces the switch; misses route to the var
        # clause, so d(c, R) still finds the catch-all.
        source = (
            "d(a, 1).\n"
            "d(b, 2).\n"
            "d(X, 0).\n"
        )
        optimized, report = _optimize(
            source, [], ["d(a, R)", "d(b, R)", "d(c, R)"]
        )
        assert report.ok, report.to_text()
        [record] = [
            p for p in optimized.report.predicates
            if p.indicator == ("d", 2)
        ]
        assert record.forced_index
        assert "switch_on_term" in _ops(optimized, ("d", 2))

    def test_nonvar_get_specialization(self):
        source = (
            "app([], L, L).\n"
            "app([H|T], L, [H|R]) :- app(T, L, R).\n"
        )
        optimized, report = _optimize(source, [], ["app([a,b], [c], R)"])
        assert report.ok, report.to_text()
        totals = optimized.report.to_dict()["totals"]
        assert totals["nonvar_gets"] > 0
        ops = _ops(optimized, ("app", 3))
        assert any(op.endswith("_nv") for op in ops)

    def test_write_mode_get_specialization(self):
        # The third argument is a fresh, unaliased variable at every
        # call: matching its head structure degenerates to construction.
        source = (
            "app([], L, L).\n"
            "app([H|T], L, [H|R]) :- app(T, L, R).\n"
        )
        optimized, report = _optimize(source, [], ["app([a,b], [c], R)"])
        assert report.ok
        assert optimized.report.to_dict()["totals"]["write_gets"] > 0
        assert "get_list_w" in _ops(optimized, ("app", 3))

    def test_aliasing_blocks_write_mode(self):
        # w(P, P): the spec language reads the repeated variable as
        # must-aliasing, so neither argument may use the unaliased-var
        # fast path — binding one binds the other mid-match.
        source = "w(c(A), c(A)).\n"
        fresh, report = _optimize(source, [], ["w(P, Q)"])
        assert report.ok
        assert fresh.report.to_dict()["totals"]["write_gets"] == 2

        aliased, report = _optimize(source, [], ["w(P, P)"])
        assert report.ok, report.to_text()
        assert aliased.report.to_dict()["totals"]["write_gets"] == 0

    def test_unify_mode_resolution(self):
        source = (
            "app([], L, L).\n"
            "app([H|T], L, [H|R]) :- app(T, L, R).\n"
        )
        optimized, report = _optimize(source, [], ["app([a,b], [c], R)"])
        assert report.ok
        totals = optimized.report.to_dict()["totals"]
        assert totals["read_unifies"] > 0
        assert totals["write_unifies"] > 0

    def test_dead_clause_elimination(self):
        # The analysis domain abstracts constants to their type (paper
        # §3), so dead clauses must differ at the type/functor level:
        # every call passes an f/1 structure, the g/1 clause is dead.
        source = (
            "p(f(X), 1).\n"
            "p(g(X), 2).\n"
            "main :- p(f(0), R).\n"
        )
        # Validate through main only: adding a direct p/2 goal would
        # register a generic `g` calling pattern that keeps the g/1
        # clause alive (any ground term matches `g`).
        optimized, report = _optimize(source, ["main"], ["main"])
        assert report.ok, report.to_text()
        [record] = [
            p for p in optimized.report.predicates
            if p.indicator == ("p", 2)
        ]
        assert record.dead_clauses == 1
        assert record.size_after < record.size_before

    def test_all_dead_predicate_becomes_fail_stub(self):
        # q is called (so not unreachable) but its only clause is keyed
        # on an integer while every call passes an atom: no clause can
        # ever be selected, and the whole body collapses to `fail`.
        source = (
            "q(1).\n"
            "main :- q(a).\n"
        )
        optimized, report = _optimize(source, ["main"], ["main"])
        assert report.ok, report.to_text()
        assert _ops(optimized, ("q", 1)) == ["fail"]

    def test_unanalyzed_predicate_left_untouched(self):
        source = (
            "used(a).\n"
            "unreached(X) :- used(X).\n"
            "main :- used(a).\n"
        )
        optimized, report = _optimize(source, ["main"], ["main"])
        assert report.ok
        before = compile_program(Program.from_text(source)).code
        indicator = ("unreached", 1)
        start = before.entry[indicator]
        original_ops = [
            before.at(a).op
            for a in range(start, start + before.size_of(indicator))
        ]
        assert _ops(optimized, indicator) == original_ops


class TestValidationSuite:
    """Every Table 1 benchmark: optimized code is verifier-clean and
    solution-identical on both the benchmark goal and the test goal."""

    @pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
    def test_benchmark_validates(self, bench):
        optimized, report = _optimize(
            bench.source, [bench.entry], [bench.goal, bench.test_goal]
        )
        assert report.ok, f"{bench.name}:\n{report.to_text()}"
        if bench.name in DERIV_GROUP:
            # d/3 is why the deriv group exists: two var-keyed clauses
            # that only forced dispatch can index.
            totals = optimized.report.to_dict()["totals"]
            assert totals["forced_index"] >= 1


#: Semantics-visible but harmless edits: duplicating a clause changes
#: solution multiplicity identically on both sides, and a fresh fact
#: predicate is unreached.  Drawn from the shared repro.fuzz mutation
#: engine — one source of seeded randomness for every random-edit test.
EDIT_OPS = ("duplicate_clause", "add_fact_predicate")


def _random_edit(source, rng):
    edited, applied = Mutator(rng, ops=EDIT_OPS).mutate_text(source)
    assert applied, "benchmark programs always offer an edit site"
    return edited


class TestRandomEditProperty:
    """Optimizing seeded random edits of the benchmarks stays
    verifier-clean and solution-identical (edited baseline vs edited
    optimized — the same program on both sides)."""

    NAMES = ("nreverse", "qsort", "serialise", "times10", "queens_8")

    @pytest.mark.parametrize("seed", range(6))
    def test_edited_benchmark_validates(self, seed):
        rng = random.Random(seed)
        bench = get_benchmark(rng.choice(self.NAMES))
        source = bench.source
        for _ in range(rng.randint(1, 3)):
            source = _random_edit(source, rng)
        # Duplicating clauses of a recursive predicate can multiply the
        # solution count combinatorially; comparing a bounded prefix
        # keeps the property test fast without weakening the ordered
        # solution comparison.
        _, report = _optimize(
            source, [bench.entry], [bench.goal], max_solutions=10
        )
        assert report.ok, f"seed {seed} ({bench.name}):\n{report.to_text()}"


class TestOptimizeCli:
    def test_report_and_exit_zero(self, capsys):
        from repro.cli import main_optimize

        status = main_optimize([
            "examples/nrev.pl", "nrev(glist, var)",
            "--goal", "nrev([a,b,c], R)",
        ])
        output = capsys.readouterr().out
        assert status == 0
        assert "optimization report" in output
        assert "optimized code is clean" in output

    def test_json_document(self, capsys):
        from repro.cli import main_optimize

        status = main_optimize([
            "examples/nrev.pl", "nrev(glist, var)",
            "--goal", "nrev([a,b,c], R)", "--json",
        ])
        assert status == 0
        document = json.loads(capsys.readouterr().out)
        assert document["validation"]["ok"] is True
        assert document["validation"]["goals"][0]["matches"] is True
        assert document["optimization"]["totals"]["size_before"] > 0

    def test_analyze_optimize_flag(self, capsys):
        from repro.cli import main_analyze

        status = main_analyze([
            "examples/nrev.pl", "nrev(glist, var)", "--optimize",
        ])
        assert status == 0
        assert "optimization" in capsys.readouterr().out.lower()
