"""Tests for the WAM-code specializer (the analysis client)."""

from repro.analysis import Analyzer
from repro.optimize import specialize
from repro.prolog import Program
from repro.wam import compile_program


def specialization_for(text, entry):
    compiled = compile_program(Program.from_text(text))
    result = Analyzer(compiled).analyze([entry])
    return specialize(compiled, result)


class TestSpecialization:
    def test_ground_argument_annotations(self, append_nrev):
        report = specialization_for(append_nrev, "nrev(glist, var)")
        assert report.count("ground") > 0

    def test_write_only_annotations(self, append_nrev):
        # nrev's second argument is always unbound at call time.
        report = specialization_for(append_nrev, "nrev(glist, var)")
        assert report.count("write_only") > 0

    def test_no_annotations_without_information(self):
        report = specialization_for("p(f(X)).", "p(any)")
        assert report.count("ground") == 0
        assert report.count("write_only") == 0

    def test_nonvar_annotations(self):
        report = specialization_for("p(f(X)).", "p(nv)")
        assert report.count("nonvar") > 0

    def test_total_saving_positive(self, append_nrev):
        report = specialization_for(append_nrev, "nrev(glist, var)")
        assert report.total_saving > 0

    def test_deterministic_detection(self):
        text = """
        kind(a, 1).
        kind(b, 2).
        kind([], 3).
        main :- kind(a, _).
        """
        report = specialization_for(text, "main")
        assert ("kind", 2) in report.deterministic_predicates

    def test_var_clauses_not_deterministic(self):
        text = """
        p(a). p(X).
        main :- p(a).
        """
        report = specialization_for(text, "main")
        assert ("p", 1) not in report.deterministic_predicates

    def test_report_text(self, append_nrev):
        report = specialization_for(append_nrev, "nrev(glist, var)")
        text = report.to_text()
        assert "specialization" in text
        assert "ground" in text

    def test_instructions_seen_counts(self, append_nrev):
        report = specialization_for(append_nrev, "nrev(glist, var)")
        assert report.instructions_seen > 10
        assert len(report.annotations) <= report.instructions_seen
