"""Reproductions of the paper's worked example (Figures 2 and 3).

Figure 2: the WAM code for the head of ``p(a, [f(V)|L])``.
Figure 3: the same code reinterpreted over the calling pattern
``p(atom, glist₁)``, ending in the substitution
``{glist₁/[f(g₂)|glist₂], L/glist₂, V/g₂}``.
"""

from repro.analysis import analyze
from repro.analysis.patterns import pattern_to_trees
from repro.domain import AbsSort, tree_to_text
from repro.prolog import Clause, parse_term
from repro.wam import compile_clause
from repro.wam.listing import format_instruction

PAPER_CLAUSE = "p(a, [f(V)|L]) :- true"


class TestFigure2:
    def test_instruction_sequence(self):
        code = compile_clause(Clause.from_term(parse_term(PAPER_CLAUSE)))
        rendered = [format_instruction(i, arity=2) for i in code]
        assert rendered == [
            "get_constant a, A1",
            "get_list A2",
            "unify_variable X3",
            "unify_variable X4",
            "get_structure f/1, X3",
            "unify_variable X5",
            "proceed",
        ]

    def test_figure2_instruction_groups(self):
        # One get per head argument level, unify for subterms, in the
        # paper's breadth-first order: list level before the f/1 level.
        code = compile_clause(Clause.from_term(parse_term(PAPER_CLAUSE)))
        ops = [i.op for i in code]
        assert ops.index("get_list") < ops.index("get_structure")


class TestFigure3:
    def test_abstract_execution_of_paper_example(self):
        # call p(atom, glist): the head succeeds and the success pattern
        # is the lub-free single-clause result: the first argument stays
        # atom, the second becomes [f(g)|g-list] — re-summarized by the
        # pattern abstraction to g-list with a ground element.
        result = analyze("p(a, [f(V)|L]).", "p(atom, glist)")
        info = result.predicate(("p", 2))
        assert info.can_succeed
        success = [tree_to_text(t) for t in result.success_types(("p", 2))]
        assert success[0] == "atom"
        assert success[1] == "g-list"

    def test_step_2_1_get_list_instantiates_glist(self):
        # Isolate step (2.1): glist <- [g1 | glist2].
        result = analyze("q([Car|Cdr], Car, Cdr).", "q(glist, var, var)")
        success = [tree_to_text(t) for t in result.success_types(("q", 3))]
        assert success[1] == "g"       # Car: the car of glist is g
        assert success[2] == "g-list"  # Cdr: the cdr is glist again

    def test_step_2_2_get_struct_instantiates_g(self):
        # Isolate step (2.2): g1 <- f(g2).
        result = analyze("r(f(V), V).", "r(g, var)")
        success = [tree_to_text(t) for t in result.success_types(("r", 2))]
        assert success[0] == "f(g)"
        assert success[1] == "g"

    def test_calling_pattern_recorded_verbatim(self):
        result = analyze("p(a, [f(V)|L]).", "p(atom, glist)")
        entries = result.table.entries_for(("p", 2))
        assert len(entries) == 1
        calling = pattern_to_trees(entries[0].calling)
        assert tree_to_text(calling[0]) == "atom"
        assert tree_to_text(calling[1]) == "g-list"

    def test_wrong_constant_fails_step_1(self):
        # get_const a with an integer calling pattern must fail.
        result = analyze("p(a, [f(V)|L]).", "p(int, glist)")
        assert not result.predicate(("p", 2)).can_succeed
