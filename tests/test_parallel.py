"""Tests for Independent And-Parallelism detection."""

import pytest

from repro.analysis import Analyzer
from repro.optimize import annotate_parallelism
from repro.prolog import Program


def report_for(text, entry):
    program = Program.from_text(text)
    result = Analyzer(program).analyze([entry])
    return annotate_parallelism(program, result)


def pairs_of(report, name, arity):
    return [
        pair
        for annotated in report.clauses
        if annotated.indicator == (name, arity)
        for pair in annotated.pairs
    ]


class TestIndependent:
    def test_divide_and_conquer(self):
        text = """
        main :- work(4, _).
        work(0, leaf) :- !.
        work(N, node(L, R)) :- M is N - 1, work(M, L), work(M, R).
        """
        report = report_for(text, "main")
        pairs = pairs_of(report, "work", 2)
        assert len(pairs) == 1
        assert pairs[0].status == "independent"
        assert pairs[0].conditions == []

    def test_disjoint_goals(self):
        text = "main :- p(_), q(_). p(1). q(2)."
        report = report_for(text, "main")
        pairs = pairs_of(report, "main", 0)
        assert pairs[0].status == "independent"

    def test_ground_shared_var_is_independent(self):
        text = """
        main(X) :- use(X), use(X).
        use(_).
        """
        report = report_for(text, "main(g)")
        pairs = pairs_of(report, "main", 1)
        assert pairs[0].status == "independent"


class TestConditional:
    def test_shared_unbound_var(self):
        text = """
        main :- p(X), q(X).
        p(1).
        q(_).
        """
        report = report_for(text, "main")
        pairs = pairs_of(report, "main", 0)
        assert pairs[0].status == "conditional"
        assert pairs[0].conditions == ["ground(X)"]

    def test_qsort_recursive_calls(self):
        from repro.bench import get_benchmark

        bench = get_benchmark("qsort")
        report = report_for(bench.source, bench.entry)
        qsort_pairs = pairs_of(report, "qsort", 3)
        assert qsort_pairs, "qsort clause 2 must produce goal pairs"
        assert all(pair.status == "conditional" for pair in qsort_pairs)

    def test_sharing_through_list_elements(self):
        # split-style distribution: L1 and L2 may share elements of L,
        # so the two consumers need an indep check.
        text = """
        main(L) :- split(L, A, B), use(A), use(B).
        split([], [], []).
        split([X|T], [X|A], B) :- split(T, B, A).
        use(_).
        """
        report = report_for(text, "main(list(any))")
        use_pairs = [
            pair
            for pair in pairs_of(report, "main", 1)
            if pair.left_goal.name == "use" and pair.right_goal.name == "use"
        ]
        assert use_pairs
        assert use_pairs[0].status == "conditional"
        assert any(cond.startswith("indep(") for cond in use_pairs[0].conditions)

    def test_ground_input_split_is_safe(self):
        text = """
        main(L) :- split(L, A, B), use(A), use(B).
        split([], [], []).
        split([X|T], [X|A], B) :- split(T, B, A).
        use(_).
        """
        report = report_for(text, "main(glist)")
        use_pairs = [
            pair
            for pair in pairs_of(report, "main", 1)
            if pair.left_goal.name == "use" and pair.right_goal.name == "use"
        ]
        assert use_pairs
        assert use_pairs[0].status == "independent"


class TestReportShape:
    def test_counts(self):
        text = "main :- p(X), q(X), r(_). p(1). q(_). r(_)."
        report = report_for(text, "main")
        assert report.count("conditional") >= 1
        assert report.count("independent") >= 1

    def test_to_text(self):
        text = "main :- p(X), q(X). p(1). q(_)."
        report = report_for(text, "main")
        text_out = report.to_text()
        assert "conditional" in text_out
        assert "ground(X)" in text_out

    def test_builtins_not_parallelized(self):
        text = "main(X, Y) :- X is 1 + 1, Y is 2 + 2, p(X), p(Y). p(_)."
        report = report_for(text, "main(var, var)")
        pairs = pairs_of(report, "main", 2)
        # Only the two user calls form a pair.
        assert len(pairs) == 1
        assert pairs[0].left_goal.name == "p"

    def test_single_goal_clauses_skipped(self):
        text = "main :- p(1). p(_)."
        report = report_for(text, "main")
        assert pairs_of(report, "main", 0) == []

    def test_benchmarks_annotate_without_error(self):
        from repro.bench import BENCHMARKS

        for bench in BENCHMARKS[:6]:
            report = report_for(bench.source, bench.entry)
            assert report.count("unknown") == 0
