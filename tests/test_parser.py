"""Tests for the operator-precedence parser."""

import pytest

from repro.errors import PrologSyntaxError
from repro.prolog import OperatorTable, parse_term, read_terms
from repro.prolog.parser import parse_term_with_vars, read_terms_with_positions
from repro.prolog.terms import (
    NIL,
    Atom,
    Float,
    Int,
    Struct,
    Var,
    is_proper_list,
    list_elements,
)


def s(name, *args):
    return Struct(name, tuple(args))


class TestPrimary:
    def test_atom(self):
        assert parse_term("foo") == Atom("foo")

    def test_integer(self):
        assert parse_term("42") == Int(42)

    def test_float(self):
        assert parse_term("1.5") == Float(1.5)

    def test_variable(self):
        term = parse_term("X")
        assert isinstance(term, Var) and term.name == "X"

    def test_functor(self):
        assert parse_term("f(a, 1)") == s("f", Atom("a"), Int(1))

    def test_nested_functor(self):
        assert parse_term("f(g(h(a)))") == s("f", s("g", s("h", Atom("a"))))

    def test_parenthesized(self):
        assert parse_term("(a)") == Atom("a")

    def test_string_becomes_codes(self):
        term = parse_term('"ab"')
        elements, tail = list_elements(term)
        assert [e.value for e in elements] == [97, 98]
        assert tail == NIL

    def test_curly(self):
        assert parse_term("{}") == Atom("{}")
        assert parse_term("{a}") == s("{}", Atom("a"))

    def test_negative_literal(self):
        assert parse_term("-5") == Int(-5)
        assert parse_term("-2.5") == Float(-2.5)

    def test_negation_of_expression(self):
        assert parse_term("-(5)") == Int(5) or parse_term("- (5)") == s(
            "-", Int(5)
        )


class TestVariables:
    def test_shared_names(self):
        term = parse_term("f(X, X)")
        assert term.args[0] is term.args[1]

    def test_anonymous_distinct(self):
        term = parse_term("f(_, _)")
        assert term.args[0] is not term.args[1]

    def test_var_map(self):
        _, mapping = parse_term_with_vars("f(X, Y)")
        assert set(mapping) == {"X", "Y"}


class TestLists:
    def test_empty(self):
        assert parse_term("[]") == NIL

    def test_simple(self):
        elements, tail = list_elements(parse_term("[1, 2, 3]"))
        assert [e.value for e in elements] == [1, 2, 3]
        assert tail == NIL

    def test_with_tail(self):
        elements, tail = list_elements(parse_term("[a | T]"))
        assert elements == [Atom("a")]
        assert isinstance(tail, Var)

    def test_nested(self):
        term = parse_term("[[1], []]")
        assert is_proper_list(term)

    def test_comma_terms_inside(self):
        elements, _ = list_elements(parse_term("[a, (b, c)]"))
        assert elements[1] == s(",", Atom("b"), Atom("c"))


class TestOperators:
    def test_precedence_mul_over_add(self):
        assert parse_term("a + b * c") == s(
            "+", Atom("a"), s("*", Atom("b"), Atom("c"))
        )

    def test_left_associative(self):
        assert parse_term("a - b - c") == s(
            "-", s("-", Atom("a"), Atom("b")), Atom("c")
        )

    def test_right_associative_comma(self):
        assert parse_term("(a, b, c)") == s(
            ",", Atom("a"), s(",", Atom("b"), Atom("c"))
        )

    def test_xfx_clause(self):
        term = parse_term("h :- b")
        assert term.indicator == (":-", 2)

    def test_prefix_minus(self):
        assert parse_term("- a") == s("-", Atom("a"))

    def test_prefix_negation(self):
        assert parse_term("\\+ a") == s("\\+", Atom("a"))

    def test_is_operator(self):
        term = parse_term("X is Y + 1")
        assert term.name == "is"

    def test_comparison_non_associative(self):
        with pytest.raises(PrologSyntaxError):
            parse_term("a = b = c")

    def test_parens_override(self):
        assert parse_term("(a + b) * c") == s(
            "*", s("+", Atom("a"), Atom("b")), Atom("c")
        )

    def test_if_then_else(self):
        term = parse_term("(c -> t ; e)")
        assert term.name == ";"
        assert term.args[0].name == "->"

    def test_univ(self):
        assert parse_term("X =.. L").name == "=.."

    def test_operator_as_argument(self):
        term = parse_term("f(-, +)")
        assert term == s("f", Atom("-"), Atom("+"))

    def test_power_right_assoc(self):
        assert parse_term("2 ^ 3 ^ 4") == s(
            "^", Int(2), s("^", Int(3), Int(4))
        )

    def test_bar_as_disjunction(self):
        term = parse_term("(a | b)")
        assert term == s(";", Atom("a"), Atom("b"))


class TestReadTerms:
    def test_multiple_clauses(self):
        terms = read_terms("a. b. c.")
        assert terms == [Atom("a"), Atom("b"), Atom("c")]

    def test_missing_dot(self):
        with pytest.raises(PrologSyntaxError):
            read_terms("a b")

    def test_op_directive_applied(self):
        terms = read_terms(":- op(700, xfx, ===). a === b.")
        assert terms == [s("===", Atom("a"), Atom("b"))]

    def test_op_directive_list(self):
        terms = read_terms(":- op(700, xfx, [<<<, >>>]). a <<< b.")
        assert terms[0].name == "<<<"

    def test_other_directive_kept(self):
        terms = read_terms(":- dynamic(foo/1).")
        assert terms[0].indicator == (":-", 1)

    def test_custom_table_persists(self):
        table = OperatorTable()
        read_terms(":- op(700, xfx, ~~).", table)
        assert parse_term("a ~~ b", table).name == "~~"


class TestReadTermsWithPositions:
    def test_positions_track_first_token(self):
        pairs = read_terms_with_positions("a.\n  b(X).\nc :- a.")
        assert [position for _, position in pairs] == [(1, 1), (2, 3), (3, 1)]
        assert pairs[0][0] == Atom("a")

    def test_directives_consume_no_position(self):
        pairs = read_terms_with_positions(":- op(700, xfx, ===).\na === b.")
        assert len(pairs) == 1
        assert pairs[0][1] == (2, 1)

    def test_agrees_with_read_terms(self):
        text = "p(a).  q(b).\nr(c)."
        assert read_terms(text) == [term for term, _ in read_terms_with_positions(text)]


class TestErrors:
    def test_unbalanced_paren(self):
        with pytest.raises(PrologSyntaxError):
            parse_term("f(a")

    def test_unbalanced_bracket(self):
        with pytest.raises(PrologSyntaxError):
            parse_term("[a, b")

    def test_trailing_input(self):
        with pytest.raises(PrologSyntaxError):
            parse_term("a b")

    def test_empty_input(self):
        with pytest.raises(PrologSyntaxError):
            parse_term("")
