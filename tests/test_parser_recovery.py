"""Parser error recovery: collect every syntax error, keep good clauses.

The reader resynchronizes at the next clause-terminating ``.`` after a
syntax error, so one malformed clause costs exactly that clause — the
rest of the file still parses, analyzes, and lints.
"""

import pytest

from repro.errors import PrologSyntaxError
from repro.prolog.parser import read_terms, read_terms_with_recovery
from repro.prolog.program import Program
from repro.prolog.writer import term_to_text


class TestReadTermsWithRecovery:
    def test_clean_text_matches_read_terms(self):
        text = "foo(1).\nbar(X) :- foo(X).\n"
        strict = read_terms(text)
        recovered, errors = read_terms_with_recovery(text)
        assert errors == []
        assert [term_to_text(t) for t, _ in recovered] == [
            term_to_text(t) for t in strict
        ]

    def test_collects_every_error(self):
        text = "foo(1).\nbar(.\nbaz(2).\nqux(]].\nquux(3).\n"
        terms, errors = read_terms_with_recovery(text)
        names = [term_to_text(t) for t, _ in terms]
        assert names == ["foo(1)", "baz(2)", "quux(3)"]
        assert len(errors) == 2
        assert all(isinstance(e, PrologSyntaxError) for e in errors)

    def test_resync_does_not_swallow_following_clause(self):
        # The error for "bar(." consumes the terminator itself; the
        # resync must notice that and NOT skip ahead to baz's ".".
        terms, errors = read_terms_with_recovery("bar(.\nbaz(2).\n")
        assert [term_to_text(t) for t, _ in terms] == ["baz(2)"]
        assert len(errors) == 1

    def test_error_positions_reported(self):
        _, errors = read_terms_with_recovery("foo(1).\nbar(.\n")
        (error,) = errors
        assert error.line == 2

    def test_lexical_error_stops_the_read(self):
        # A tokenizer error poisons the whole text: no resync possible.
        terms, errors = read_terms_with_recovery("foo(1). 'unterminated\n")
        assert terms == []
        assert len(errors) == 1

    def test_missing_terminator_at_eof(self):
        terms, errors = read_terms_with_recovery("foo(1).\nbar(2)")
        assert [term_to_text(t) for t, _ in terms] == ["foo(1)"]
        assert len(errors) == 1


class TestProgramRecovery:
    def test_clean_program_no_errors(self):
        program, errors = Program.from_text_with_recovery("p(1).\np(2).\n")
        assert errors == []
        assert ("p", 1) in program.predicates

    def test_bad_clauses_dropped_good_kept(self):
        program, errors = Program.from_text_with_recovery(
            "p(1).\nq( :- broken.\np(2).\nr(X) :- p(X).\n"
        )
        assert len(errors) == 1
        assert ("p", 1) in program.predicates
        assert ("r", 1) in program.predicates
        assert len(program.predicates[("p", 1)].clauses) == 2

    def test_errors_sorted_by_position(self):
        _, errors = Program.from_text_with_recovery(
            "a(.\nb(1).\nc(]].\nd(2).\n"
        )
        assert len(errors) == 2
        assert [e.line for e in errors] == sorted(e.line for e in errors)

    def test_semantic_errors_carry_position(self):
        # A term that parses but is not a valid clause (e.g. a bare
        # number) is reported at its source position too.
        program, errors = Program.from_text_with_recovery("p(1).\n42.\np(2).\n")
        assert len(errors) == 1
        assert errors[0].line == 2
        assert len(program.predicates[("p", 1)].clauses) == 2

    def test_strict_from_text_still_raises(self):
        with pytest.raises(PrologSyntaxError):
            Program.from_text("p(.\n")


class TestLintFileRecovery:
    def test_one_e001_per_error_and_linting_continues(self, tmp_path):
        from repro.lint import LintOptions, lint_file

        source = tmp_path / "broken.pl"
        source.write_text(
            "p(1).\n"
            "q( :- nope.\n"
            "p(2).\n"
            "r(]].\n"
            "main :- p(X), write(X).\n"
        )
        report = lint_file(
            str(source), ["main"], options=LintOptions(on_undefined="top")
        )
        e001 = [d for d in report.diagnostics if d.code == "E001"]
        assert len(e001) == 2
        assert all(d.position is not None for d in e001)
        # the recovered remainder was still analyzed + linted
        assert report.has_errors

    def test_all_errors_no_predicates(self, tmp_path):
        from repro.lint import lint_file

        source = tmp_path / "hopeless.pl"
        source.write_text("p(.\nq(]].\n")
        report = lint_file(str(source), ["main"])
        codes = {d.code for d in report.diagnostics}
        assert codes == {"E001"}
        assert len(report.diagnostics) == 2
