"""Tests for calling/success patterns: abstraction, sharing, lub."""

from repro.analysis.aheap import make_abs
from repro.analysis.patterns import (
    Pattern,
    abstract_cells,
    canonicalize,
    materialize_pattern,
    pattern_leq,
    pattern_lub,
    pattern_to_text,
    pattern_to_trees,
    share_pairs,
)
from repro.domain import ANY_T, AbsSort, GROUND_T, INTEGER_T
from repro.prolog import parse_term
from repro.wam.cells import CON, Heap

S = AbsSort


def pattern_of(*cells_spec):
    """Build a pattern from heap cells described by spec functions."""
    heap = Heap()
    cells = [build(heap) for build in cells_spec]
    return abstract_cells(heap, cells), heap


class TestAbstraction:
    def test_unbound_var(self):
        heap = Heap()
        pattern = abstract_cells(heap, [heap.new_var()])
        assert pattern.args == (("i", S.VAR, 0),)

    def test_shared_var(self):
        heap = Heap()
        v = heap.new_var()
        pattern = abstract_cells(heap, [v, v])
        assert pattern.args[0][2] == pattern.args[1][2]

    def test_distinct_vars(self):
        heap = Heap()
        pattern = abstract_cells(heap, [heap.new_var(), heap.new_var()])
        assert pattern.args[0][2] != pattern.args[1][2]

    def test_abs_cell(self):
        heap = Heap()
        pattern = abstract_cells(heap, [make_abs(heap, S.GROUND)])
        assert pattern.args == (("i", S.GROUND, 0),)

    def test_shared_abs(self):
        heap = Heap()
        cell = make_abs(heap, S.ANY)
        pattern = abstract_cells(heap, [cell, cell])
        assert str(pattern) == "(any_0, any_0)"

    def test_constants(self):
        heap = Heap()
        pattern = abstract_cells(
            heap,
            [heap.encode(parse_term("foo")), heap.encode(parse_term("42"))],
        )
        assert pattern.args[0][:2] == ("i", S.ATOM)
        assert pattern.args[1][:2] == ("i", S.INTEGER)

    def test_ground_list_becomes_glist(self):
        heap = Heap()
        cell = heap.encode(parse_term("[1, 2, 3]"))
        pattern = abstract_cells(heap, [cell])
        assert pattern.args[0][:2] == ("li", INTEGER_T)

    def test_long_list_no_depth_blowup(self):
        heap = Heap()
        text = "[" + ", ".join(["a"] * 40) + "]"
        pattern = abstract_cells(heap, [heap.encode(parse_term(text))])
        assert pattern.args[0][0] == "li"

    def test_structure_with_shared_subterm(self):
        heap = Heap()
        struct = heap.encode(parse_term("f(X, X)"))
        pattern = abstract_cells(heap, [struct])
        node = pattern.args[0]
        assert node[0] == "f"
        assert node[3][0][2] == node[3][1][2]  # shared instance ids

    def test_cross_argument_structure_sharing(self):
        heap = Heap()
        shared = {}
        a = heap.encode(parse_term("f(X)"), shared)
        b = heap.encode(parse_term("g(X)"), shared)
        # Different X objects; share via the same mapping requires same Var.
        heap2 = Heap()
        term = parse_term("p(f(X), g(X))")
        cell = heap2.encode(term)
        args = [
            heap2.cells[cell[1] + 1],
            heap2.cells[cell[1] + 2],
        ]
        pattern = abstract_cells(heap2, args)
        assert share_pairs(pattern) == frozenset({(0, 1)})

    def test_partial_list_kept_as_cons(self):
        heap = Heap()
        cell = heap.encode(parse_term("[a | T]"))
        pattern = abstract_cells(heap, [cell])
        assert pattern.args[0][0] == "f"

    def test_depth_restriction_summary(self):
        heap = Heap()
        cell = heap.encode(parse_term("f(g(h(i(j(k)))))"))
        pattern = abstract_cells(heap, [cell], depth=3)
        node = pattern.args[0]
        # Bottom levels summarized to a simple ground instance.
        flat = str(pattern)
        assert "g(" in flat or "f(" in flat


class TestCanonicalization:
    def test_ids_renumbered_in_order(self):
        pattern = canonicalize(
            Pattern((("i", S.ANY, 7), ("i", S.VAR, 3), ("i", S.ANY, 7)))
        )
        assert pattern.args == (
            ("i", S.ANY, 0),
            ("i", S.VAR, 1),
            ("i", S.ANY, 0),
        )

    def test_equality_after_canonicalization(self):
        a = canonicalize(Pattern((("i", S.ANY, 5), ("i", S.ANY, 5))))
        b = canonicalize(Pattern((("i", S.ANY, 9), ("i", S.ANY, 9))))
        assert a == b
        assert hash(a) == hash(b)

    def test_sharing_distinguishes_patterns(self):
        shared = canonicalize(Pattern((("i", S.ANY, 0), ("i", S.ANY, 0))))
        unshared = canonicalize(Pattern((("i", S.ANY, 0), ("i", S.ANY, 1))))
        assert shared != unshared

    def test_ground_sharing_canonicalized_away(self):
        # Must-aliasing between ground positions constrains nothing, so
        # semantically identical patterns (with and without the ground
        # alias annotation) must share a canonical form.
        shared = canonicalize(
            Pattern((("i", S.GROUND, 0), ("i", S.GROUND, 0)))
        )
        unshared = canonicalize(
            Pattern((("i", S.GROUND, 0), ("i", S.GROUND, 1)))
        )
        assert shared == unshared

    def test_ground_freshening_is_idempotent(self):
        from repro.domain import EMPTY_T

        pattern = Pattern((
            ("i", S.GROUND, 4), ("i", S.ANY, 4), ("li", EMPTY_T, 4),
        ))
        once = canonicalize(pattern)
        assert canonicalize(once) == once


class TestMaterialization:
    def test_roundtrip(self):
        heap = Heap()
        original = canonicalize(
            Pattern((("i", S.GROUND, 0), ("li", INTEGER_T, 1), ("i", S.VAR, 2)))
        )
        cells = materialize_pattern(heap, original)
        again = abstract_cells(heap, cells)
        assert again == original

    def test_sharing_materialized(self):
        heap = Heap()
        pattern = canonicalize(Pattern((("i", S.ANY, 0), ("i", S.ANY, 0))))
        cells = materialize_pattern(heap, pattern)
        assert cells[0] == cells[1]

    def test_nil_materializes_concrete(self):
        from repro.domain import EMPTY_T
        from repro.prolog.terms import NIL

        heap = Heap()
        pattern = canonicalize(Pattern((("li", EMPTY_T, 0),)))
        cells = materialize_pattern(heap, pattern)
        assert cells[0] == (CON, NIL)

    def test_struct_roundtrip(self):
        heap = Heap()
        node = ("f", "f", 2, (("i", S.GROUND, 0), ("i", S.VAR, 1)))
        pattern = canonicalize(Pattern((node,)))
        cells = materialize_pattern(heap, pattern)
        assert abstract_cells(heap, cells) == pattern


class TestLub:
    def test_equal_patterns(self):
        pattern = canonicalize(Pattern((("i", S.GROUND, 0),)))
        assert pattern_lub(pattern, pattern) == pattern

    def test_pointwise(self):
        a = canonicalize(Pattern((("i", S.ATOM, 0), ("i", S.VAR, 1))))
        b = canonicalize(Pattern((("i", S.INTEGER, 0), ("i", S.VAR, 1))))
        merged = pattern_lub(a, b)
        assert merged.args[0][:2] == ("i", S.CONST)

    def test_sharing_kept_when_equal(self):
        a = canonicalize(Pattern((("i", S.ANY, 0), ("i", S.ANY, 0))))
        merged = pattern_lub(a, a)
        assert share_pairs(merged) == frozenset({(0, 1)})

    def test_sharing_dropped_on_disagreement(self):
        shared = canonicalize(Pattern((("i", S.ANY, 0), ("i", S.ANY, 0))))
        unshared = canonicalize(Pattern((("i", S.ANY, 0), ("i", S.ANY, 1))))
        merged = pattern_lub(shared, unshared)
        assert share_pairs(merged) == frozenset()

    def test_leq(self):
        small = canonicalize(Pattern((("li", INTEGER_T, 0),)))
        big = canonicalize(Pattern((("li", GROUND_T, 0),)))
        assert pattern_leq(small, big)
        assert not pattern_leq(big, small)


class TestDisplay:
    def test_subscripts_only_when_shared(self):
        pattern = canonicalize(
            Pattern((("i", S.ANY, 0), ("i", S.ANY, 0), ("i", S.VAR, 1)))
        )
        assert pattern_to_text(pattern) == "(any_0, any_0, var)"

    def test_list_text(self):
        pattern = canonicalize(Pattern((("li", GROUND_T, 0),)))
        assert pattern_to_text(pattern) == "(g-list)"

    def test_trees_conversion(self):
        pattern = canonicalize(Pattern((("i", S.NV, 0), ("li", ANY_T, 1))))
        assert pattern_to_trees(pattern) == (("s", S.NV), ("l", ANY_T))
