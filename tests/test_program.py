"""Tests for clause/program structure and control-construct normalization."""

import pytest

from repro.prolog import Clause, Program, normalize_program, parse_term
from repro.prolog.program import flatten_conjunction
from repro.prolog.terms import Atom, Struct, Var


class TestFlatten:
    def test_single_goal(self):
        assert flatten_conjunction(parse_term("a")) == [Atom("a")]

    def test_nested(self):
        goals = flatten_conjunction(parse_term("(a, b, c)"))
        assert [g.name for g in goals] == ["a", "b", "c"]

    def test_true_removed(self):
        assert flatten_conjunction(parse_term("(a, true, b)")) == [
            Atom("a"),
            Atom("b"),
        ]

    def test_order_preserved(self):
        goals = flatten_conjunction(parse_term("((a, b), (c, d))"))
        assert [g.name for g in goals] == ["a", "b", "c", "d"]


class TestClause:
    def test_fact(self):
        clause = Clause.from_term(parse_term("p(a)"))
        assert clause.body == []
        assert clause.indicator == ("p", 1)

    def test_rule(self):
        clause = Clause.from_term(parse_term("p(X) :- q(X), r"))
        assert len(clause.body) == 2

    def test_rename_fresh(self):
        clause = Clause.from_term(parse_term("p(X) :- q(X)"))
        renamed = clause.rename()
        assert renamed.head.args[0] is renamed.body[0].args[0]
        assert renamed.head.args[0] is not clause.head.args[0]

    def test_to_term_roundtrip(self):
        clause = Clause.from_term(parse_term("p(X) :- q(X), r(X)"))
        again = Clause.from_term(clause.to_term())
        assert len(again.body) == 2

    def test_str(self):
        clause = Clause.from_term(parse_term("p :- q"))
        assert str(clause) == "p :- q."

    def test_bad_head(self):
        from repro.errors import PrologSyntaxError

        with pytest.raises(PrologSyntaxError):
            Clause.from_term(parse_term("1 :- q"))


class TestProgram:
    def test_groups_by_indicator(self):
        program = Program.from_text("p(a). p(b). q(c).")
        assert len(program.clauses(("p", 1))) == 2
        assert len(program.clauses(("q", 1))) == 1

    def test_clause_order(self):
        program = Program.from_text("p(1). p(2). p(3).")
        heads = [c.head.args[0].value for c in program.clauses(("p", 1))]
        assert heads == [1, 2, 3]

    def test_unknown_predicate_empty(self):
        assert Program.from_text("p.").clauses(("q", 0)) == []

    def test_directives_collected(self):
        program = Program.from_text(":- initialization(main). p.")
        assert len(program.directives) == 1

    def test_clause_count(self):
        assert Program.from_text("a. b. b. c :- a.").clause_count() == 4

    def test_to_text_parses_back(self):
        program = Program.from_text("p(a). p(X) :- q(X), r.")
        again = Program.from_text(program.to_text())
        assert again.clause_count() == program.clause_count()


class TestNormalization:
    def test_plain_program_unchanged(self):
        program = Program.from_text("p(X) :- q(X). q(a).")
        normalized = normalize_program(program)
        assert normalized.clause_count() == 2

    def test_disjunction_becomes_aux(self):
        program = Program.from_text("p(X) :- (q(X) ; r(X)).")
        normalized = normalize_program(program)
        # Original clause plus two aux clauses.
        assert normalized.clause_count() == 3
        body = normalized.clauses(("p", 1))[0].body
        assert len(body) == 1
        aux = body[0]
        assert aux.name.startswith("$or")

    def test_disjunction_aux_shares_vars(self):
        program = Program.from_text("p(X) :- (q(X) ; r(X)).")
        normalized = normalize_program(program)
        clause = normalized.clauses(("p", 1))[0]
        aux_goal = clause.body[0]
        assert aux_goal.args[0] is clause.head.args[0]

    def test_if_then_else(self):
        program = Program.from_text("max(X, Y, M) :- (X >= Y -> M = X ; M = Y).")
        normalized = normalize_program(program)
        aux_name = normalized.clauses(("max", 3))[0].body[0].name
        aux_clauses = [
            c
            for ind, p in normalized.predicates.items()
            if ind[0] == aux_name
            for c in p.clauses
        ]
        assert len(aux_clauses) == 2
        assert Atom("!") in aux_clauses[0].body

    def test_negation(self):
        program = Program.from_text("p(X) :- \\+ q(X).")
        normalized = normalize_program(program)
        aux_name = normalized.clauses(("p", 1))[0].body[0].name
        assert aux_name.startswith("$not")
        aux_clauses = [
            c
            for ind, p in normalized.predicates.items()
            if ind[0] == aux_name
            for c in p.clauses
        ]
        assert len(aux_clauses) == 2
        assert Atom("fail") in aux_clauses[0].body

    def test_nested_control(self):
        program = Program.from_text("p :- (a ; (b ; c)).")
        normalized = normalize_program(program)
        # p + outer aux (2 clauses) + inner aux (2 clauses).
        assert normalized.clause_count() == 5

    def test_bare_if_then(self):
        program = Program.from_text("p :- (a -> b).")
        normalized = normalize_program(program)
        assert normalized.clause_count() == 3


class TestClausePositions:
    def test_from_text_records_positions(self):
        program = Program.from_text("p(a).\nq(X) :- p(X).\n\np(b).")
        p_clauses = program.clauses(("p", 1))
        assert [c.position for c in p_clauses] == [(1, 1), (4, 1)]
        assert program.clauses(("q", 1))[0].position == (2, 1)

    def test_position_text(self):
        program = Program.from_text("p(a).")
        assert program.clauses(("p", 1))[0].position_text == "1:1"

    def test_default_position_unknown(self):
        clause = Clause.from_term(parse_term("p(a)"))
        assert clause.position is None
        assert clause.position_text == "?:?"

    def test_rename_preserves_position(self):
        program = Program.from_text("p(X) :- q(X).")
        clause = program.clauses(("p", 1))[0]
        assert clause.rename().position == clause.position == (1, 1)

    def test_aux_clauses_inherit_source_position(self):
        program = Program.from_text("ok.\np(X) :- (q(X) ; r(X)).\nq(a).\nr(b).")
        normalized = normalize_program(program)
        aux_name = normalized.clauses(("p", 1))[0].body[0].name
        for clause in normalized.clauses((aux_name, 2)):
            assert clause.position == (2, 1)
