"""A corpus of classic Prolog programs beyond the paper's benchmarks.

Each program is run concretely on the WAM (answers checked), run on the
SLD solver (agreement checked), and analyzed to a fixpoint (sanity of the
inferred facts checked) — generality evidence for the whole toolchain.
"""

import pytest

from repro.analysis import Analyzer
from repro.prolog import Program, Solver, parse_term, term_to_text
from repro.wam import Machine, compile_program

HANOI = """
hanoi(N, Moves) :- move(N, left, right, centre, Moves).
move(0, _, _, _, []) :- !.
move(N, A, B, C, Moves) :-
    M is N - 1,
    move(M, A, C, B, M1),
    move(M, C, B, A, M2),
    append(M1, [A-B|M2], Moves).
append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).
"""

PRIMES = """
primes(Limit, Ps) :- integers(2, Limit, Ns), sift(Ns, Ps).
integers(Low, High, []) :- Low > High, !.
integers(Low, High, [Low|Rest]) :- M is Low + 1, integers(M, High, Rest).
sift([], []).
sift([P|Ns], [P|Ps]) :- remove(P, Ns, Rest), sift(Rest, Ps).
remove(_, [], []).
remove(P, [N|Ns], Out) :-
    ( 0 is N mod P -> remove(P, Ns, Out)
    ; Out = [N|Rest], remove(P, Ns, Rest)
    ).
"""

MU = """
% The MU puzzle (Hofstadter): derive a theorem from the axiom 'mi'.
theorem(Depth, T) :- derive(Depth, [m, i], T).
derive(_, T, T).
derive(D, From, T) :-
    D > 0,
    D1 is D - 1,
    rule(From, Next),
    derive(D1, Next, T).
rule(S, Out) :- append(X, [i], S), append(X, [i, u], Out).
rule([m|T], [m|Out]) :- append(T, T, Out).
rule(S, Out) :- append(P, Rest, S), append([i, i, i], Q, Rest),
                append(P, [u|Q], Out).
rule(S, Out) :- append(P, Rest, S), append([u, u], Q, Rest),
                append(P, Q, Out).
append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).
"""

GCD = """
gcd(X, 0, X) :- !.
gcd(X, Y, G) :- Y > 0, R is X mod Y, gcd(Y, R, G).
"""

FLATTEN = """
flatten(X, [X]) :- \\+ is_list_(X), !.
flatten([], []) :- !.
flatten([H|T], R) :- flatten(H, FH), flatten(T, FT), app(FH, FT, R).
is_list_([]).
is_list_([_|_]).
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
"""


def wam_once(text, goal_text):
    machine = Machine(compile_program(Program.from_text(text)))
    return machine.run_once(parse_term(goal_text))


class TestHanoi:
    def test_move_count(self):
        solution = wam_once(HANOI, "hanoi(5, Moves)")
        moves = term_to_text(solution["Moves"])
        assert moves.count("-") == 31  # 2^5 - 1 moves

    def test_first_move(self):
        solution = wam_once(HANOI, "hanoi(3, [First|_])")
        assert term_to_text(solution["First"]) == "left - right"

    def test_analysis(self):
        result = Analyzer(HANOI).analyze(["hanoi(int, var)"])
        types = result.success_types(("hanoi", 2))
        from repro.domain import tree_is_ground

        assert tree_is_ground(types[1])  # the move list is ground


class TestPrimes:
    def test_primes_to_30(self):
        solution = wam_once(PRIMES, "primes(30, Ps)")
        assert term_to_text(solution["Ps"]) == (
            "[2, 3, 5, 7, 11, 13, 17, 19, 23, 29]"
        )

    def test_solver_agrees(self):
        solver = Solver(Program.from_text(PRIMES))
        solution = solver.solve_once(parse_term("primes(20, Ps)"))
        assert term_to_text(solution["Ps"]) == "[2, 3, 5, 7, 11, 13, 17, 19]"

    def test_analysis(self):
        result = Analyzer(PRIMES).analyze(["primes(int, var)"])
        from repro.domain import tree_to_text

        assert tree_to_text(result.success_types(("primes", 2))[1]) == "int-list"


class TestMuPuzzle:
    def test_axiom_derivable(self):
        assert wam_once(MU, "theorem(0, [m, i])") is not None

    def test_miu_derivable(self):
        assert wam_once(MU, "theorem(1, [m, i, u])") is not None

    def test_miiu_two_steps(self):
        assert wam_once(MU, "theorem(2, [m, i, i, u])") is not None

    def test_underivable_within_depth(self):
        assert wam_once(MU, "theorem(1, [m, u])") is None

    def test_analysis_terminates(self):
        result = Analyzer(MU).analyze(["theorem(int, var)"])
        assert result.iterations < 20


class TestGcdAndFlatten:
    def test_gcd(self):
        assert term_to_text(wam_once(GCD, "gcd(48, 36, G)")["G"]) == "12"
        assert term_to_text(wam_once(GCD, "gcd(17, 5, G)")["G"]) == "1"

    def test_gcd_analysis(self):
        result = Analyzer(GCD).analyze(["gcd(int, int, var)"])
        assert result.modes(("gcd", 3)) == ["+g", "+g", "-"]

    def test_flatten(self):
        solution = wam_once(FLATTEN, "flatten([a, [b, [c, d]], [], [e]], F)")
        assert term_to_text(solution["F"]) == "[a, b, c, d, e]"

    def test_flatten_analysis(self):
        result = Analyzer(FLATTEN).analyze(["flatten(g, var)"])
        info = result.predicate(("flatten", 2))
        assert info.can_succeed
