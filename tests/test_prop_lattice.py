"""Property-based tests (hypothesis) for the abstract domain lattice."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.domain import (
    AbsSort,
    EMPTY_T,
    tree_glb,
    tree_is_empty,
    tree_is_ground,
    tree_leq,
    tree_lub,
    tree_summary_sort,
    tree_unify,
)

SIMPLE_LEAVES = [
    ("s", AbsSort.EMPTY),
    ("s", AbsSort.VAR),
    ("s", AbsSort.ATOM),
    ("s", AbsSort.INTEGER),
    ("s", AbsSort.CONST),
    ("s", AbsSort.GROUND),
    ("s", AbsSort.NV),
    ("s", AbsSort.ANY),
]


def trees():
    return st.recursive(
        st.sampled_from(SIMPLE_LEAVES),
        lambda children: st.one_of(
            st.tuples(st.just("l"), children),
            st.builds(
                lambda args: ("f", "f", len(args), tuple(args)),
                st.lists(children, min_size=1, max_size=3),
            ),
            st.builds(
                lambda args: ("f", ".", 2, tuple(args)),
                st.lists(children, min_size=2, max_size=2),
            ),
        ),
        max_leaves=8,
    )


@settings(max_examples=300)
@given(trees())
def test_leq_reflexive(a):
    assert tree_leq(a, a)


@settings(max_examples=300)
@given(trees(), trees())
def test_lub_is_upper_bound(a, b):
    join = tree_lub(a, b)
    assert tree_leq(a, join)
    assert tree_leq(b, join)


@settings(max_examples=300)
@given(trees(), trees())
def test_lub_commutes_semantically(a, b):
    ab, ba = tree_lub(a, b), tree_lub(b, a)
    assert tree_leq(ab, ba) and tree_leq(ba, ab)


@settings(max_examples=200)
@given(trees())
def test_lub_idempotent(a):
    assert tree_lub(a, a) == a


@settings(max_examples=200)
@given(trees(), trees(), trees())
def test_lub_associative_semantically(a, b, c):
    left = tree_lub(tree_lub(a, b), c)
    right = tree_lub(a, tree_lub(b, c))
    assert tree_leq(left, right) and tree_leq(right, left)


@settings(max_examples=300)
@given(trees(), trees())
def test_glb_is_lower_bound(a, b):
    meet = tree_glb(a, b)
    assert tree_leq(meet, a)
    assert tree_leq(meet, b)


@settings(max_examples=300)
@given(trees(), trees())
def test_leq_consistent_with_lub(a, b):
    if tree_leq(a, b):
        join = tree_lub(a, b)
        assert tree_leq(join, b) and tree_leq(b, join)


@settings(max_examples=200)
@given(trees(), trees(), trees())
def test_leq_transitive(a, b, c):
    if tree_leq(a, b) and tree_leq(b, c):
        assert tree_leq(a, c)


@settings(max_examples=300)
@given(trees(), trees())
def test_unify_above_glb(a, b):
    unified = tree_unify(a, b)
    meet = tree_glb(a, b)
    if unified is None:
        # Sure failure requires an empty meet.
        assert tree_is_empty(meet)
    else:
        assert tree_leq(meet, unified)


@settings(max_examples=300)
@given(trees(), trees())
def test_unify_commutes_semantically(a, b):
    ab, ba = tree_unify(a, b), tree_unify(b, a)
    if ab is None or ba is None:
        assert ab is None and ba is None
    else:
        assert tree_leq(ab, ba) and tree_leq(ba, ab)


@settings(max_examples=200)
@given(trees())
def test_summary_covers(a):
    summary = ("s", tree_summary_sort(a))
    assert tree_leq(a, summary)


@settings(max_examples=200)
@given(trees())
def test_groundness_respects_order(a):
    if tree_is_ground(a):
        assert tree_leq(a, ("s", AbsSort.GROUND))


@settings(max_examples=200)
@given(trees(), trees())
def test_lub_preserves_groundness(a, b):
    if tree_is_ground(a) and tree_is_ground(b):
        assert tree_is_ground(tree_lub(a, b))
