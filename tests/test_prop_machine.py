"""Property-based tests for the compiler/assembler and machine hygiene."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.prolog import Clause, Predicate, Program, parse_term, term_to_text
from repro.prolog.terms import Atom, Int, Struct, Var, make_list
from repro.wam import Machine, compile_predicate, compile_program
from repro.wam.assembler import assemble_unit
from repro.wam.listing import format_unit

# ----------------------------------------------------------------------
# Random clause generation.

ATOMS = st.sampled_from([Atom("a"), Atom("b"), Atom("c"), Atom("[]")])
INTS = st.builds(Int, st.integers(min_value=-3, max_value=3))
VARNAMES = st.sampled_from(["X", "Y", "Z", "W"])


def head_terms():
    def build(children):
        return st.one_of(
            st.builds(
                lambda name, args: Struct(name, tuple(args)),
                st.sampled_from(["f", "g"]),
                st.lists(children, min_size=1, max_size=2),
            ),
            st.builds(lambda items: make_list(items),
                      st.lists(children, min_size=0, max_size=2)),
        )

    return st.recursive(
        st.one_of(ATOMS, INTS, VARNAMES.map(lambda n: ("v", n))),
        build,
        max_leaves=6,
    )


def realize(term, pool):
    if isinstance(term, tuple) and term[0] == "v":
        if term[1] not in pool:
            pool[term[1]] = Var(term[1])
        return pool[term[1]]
    if isinstance(term, Struct):
        return Struct(term.name, tuple(realize(a, pool) for a in term.args))
    return term


def clauses():
    @st.composite
    def one_clause(draw):
        pool = {}
        arity = draw(st.integers(min_value=0, max_value=3))
        args = tuple(
            realize(draw(head_terms()), pool) for _ in range(arity)
        )
        head = Struct("p", args) if args else Atom("p")
        goal_count = draw(st.integers(min_value=0, max_value=3))
        body = []
        for _ in range(goal_count):
            goal_args = tuple(
                realize(draw(head_terms()), pool)
                for _ in range(draw(st.integers(min_value=0, max_value=2)))
            )
            name = draw(st.sampled_from(["q", "r"]))
            body.append(Struct(name, goal_args) if goal_args else Atom(name))
        return Clause(head, body), arity

    return one_clause()


@settings(max_examples=200, deadline=None)
@given(st.lists(clauses(), min_size=1, max_size=4))
def test_compile_listing_assemble_roundtrip(drawn):
    arity = drawn[0][1]
    same_arity = [clause for clause, a in drawn if a == arity]
    predicate = Predicate(("p", arity), same_arity)
    unit = compile_predicate(predicate)
    text = format_unit(unit.instructions)
    again = assemble_unit(text, ("p", arity))
    assert again.instructions == unit.instructions


@settings(max_examples=100, deadline=None)
@given(st.lists(clauses(), min_size=1, max_size=3))
def test_compiled_facts_retrievable(drawn):
    # Every ground fact must be retrievable from the machine verbatim.
    arity = drawn[0][1]
    facts = [
        clause
        for clause, a in drawn
        if a == arity and arity > 0 and not clause.body
    ]
    if not facts:
        return
    program = Program()
    for fact in facts:
        program.add_clause(Clause(fact.head, []))
    compiled = compile_program(program)
    machine = Machine(compiled)
    goal = Struct("p", tuple(Var(f"A{i}") for i in range(arity)))
    answers = {
        tuple(term_to_text(solution[f"A{i}"]) for i in range(arity))
        for solution in machine.run(goal)
        if all(f"A{i}" in solution for i in range(arity))
    }
    from repro.prolog.terms import is_ground

    for fact in facts:
        if is_ground(fact.head):
            expected = tuple(term_to_text(a) for a in fact.head.args)
            assert expected in answers


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=5), max_size=5))
def test_machine_state_clean_after_exhaustion(items):
    text = """
    app([], L, L).
    app([H|T], L, [H|R]) :- app(T, L, R).
    """
    compiled = compile_program(Program.from_text(text))
    machine = Machine(compiled)
    list_text = "[" + ", ".join(str(i) for i in items) + "]"
    goal = parse_term(f"app(X, Y, {list_text})")
    first = [
        (term_to_text(s["X"]), term_to_text(s["Y"]))
        for s in machine.run(goal)
    ]
    assert len(first) == len(items) + 1
    # After exhaustion no choice point survives and the trail is unwound.
    assert machine.b is None
    assert not machine.heap.share_parent
    # The same machine can run another query and get the same answers.
    second = [
        (term_to_text(s["X"]), term_to_text(s["Y"]))
        for s in machine.run(parse_term(f"app(X, Y, {list_text})"))
    ]
    assert [a for a, _ in first] == [a for a, _ in second]
