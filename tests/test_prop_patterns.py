"""Property-based tests for pattern abstraction, materialization and lub."""

import itertools

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.analysis.patterns import (
    Pattern,
    abstract_cells,
    canonicalize,
    materialize_pattern,
    pattern_leq,
    pattern_lub,
    pattern_subsumes,
    pattern_to_trees,
    share_pairs,
    tree_to_node,
)
from repro.domain import AbsSort, tree_leq
from repro.wam.cells import Heap

S = AbsSort

SORT_LEAVES = st.sampled_from(
    [S.VAR, S.ATOM, S.INTEGER, S.CONST, S.GROUND, S.NV, S.ANY]
)


def trees():
    return st.recursive(
        SORT_LEAVES.map(lambda sort: ("s", sort)),
        lambda children: st.one_of(
            st.tuples(st.just("l"), children),
            st.builds(
                lambda args: ("f", "f", len(args), tuple(args)),
                st.lists(children, min_size=1, max_size=2),
            ),
        ),
        max_leaves=5,
    )


def patterns():
    def build(tree_list, share_seed):
        counter = itertools.count()
        nodes = tuple(tree_to_node(tree, counter) for tree in tree_list)
        return canonicalize(Pattern(nodes))

    return st.builds(
        build, st.lists(trees(), min_size=0, max_size=3), st.integers()
    )


@settings(max_examples=300)
@given(patterns())
def test_materialize_abstract_roundtrip(pattern):
    heap = Heap()
    cells = materialize_pattern(heap, pattern)
    assert abstract_cells(heap, cells) == pattern


@settings(max_examples=300)
@given(patterns())
def test_canonicalization_idempotent(pattern):
    assert canonicalize(pattern) == pattern


@settings(max_examples=300)
@given(patterns(), patterns())
def test_pattern_lub_upper_bound(a, b):
    if len(a.args) != len(b.args):
        return
    merged = pattern_lub(a, b)
    assert pattern_leq(a, merged)
    assert pattern_leq(b, merged)


@settings(max_examples=300)
@given(patterns())
def test_pattern_lub_idempotent(pattern):
    assert pattern_lub(pattern, pattern) == pattern


@settings(max_examples=300)
@given(patterns(), patterns())
def test_lub_share_pairs_shrink_only(a, b):
    if len(a.args) != len(b.args):
        return
    merged = pattern_lub(a, b)
    # Must-sharing survives only where both agree.
    assert share_pairs(merged) <= share_pairs(a) | share_pairs(b)


@settings(max_examples=300)
@given(patterns(), patterns())
def test_subsumption_implies_tree_order(a, b):
    if pattern_subsumes(a, b):
        for specific, general in zip(pattern_to_trees(b), pattern_to_trees(a)):
            assert tree_leq(specific, general)


@settings(max_examples=200)
@given(patterns())
def test_subsumption_reflexive_without_sharing(pattern):
    if not share_pairs(pattern):
        ids = []
        from repro.analysis.patterns import _collect_ids

        for node in pattern.args:
            _collect_ids(node, ids)
        if len(ids) == len(set(ids)):
            assert pattern_subsumes(pattern, pattern)
