"""Property-based soundness tests connecting concrete and abstract layers.

The central safety arguments of the analysis:

* γ∘α ⊇ id — every term belongs to its own abstraction;
* abstract unification over-approximates concrete unification: whenever
  ``unify(t1, t2)`` succeeds with result ``r``, ``tree_unify(α t1, α t2)``
  succeeds and its result contains ``r``;
* the cell-level ``s_unify`` agrees: materializing ``α t`` and abstractly
  unifying it with ``t`` itself always succeeds;
* the WAM and the SLD solver agree on concrete queries.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.analysis.aheap import make_abs
from repro.analysis.aunify import s_unify
from repro.analysis.patterns import abstract_cells, materialize_pattern
from repro.domain import abstract_term, tree_contains, tree_unify
from repro.prolog import Bindings, Program, parse_term, term_to_text, unify
from repro.prolog.terms import Atom, Int, Struct, Term, Var, make_list
from repro.wam.cells import Heap

# ----------------------------------------------------------------------
# Concrete term strategies.

ATOMS = st.sampled_from([Atom("a"), Atom("b"), Atom("foo"), Atom("[]")])
INTS = st.builds(Int, st.integers(min_value=-5, max_value=5))


def terms(var_names=("X", "Y", "Z")):
    # Variables are sampled as ('varname', n) markers; _realize replaces
    # them with per-example Var objects so repeated names share identity.
    variables = st.sampled_from(var_names).map(lambda n: ("varname", n))

    def build(children):
        return st.one_of(
            st.builds(
                lambda name, args: Struct(name, tuple(args)),
                st.sampled_from(["f", "g"]),
                st.lists(children, min_size=1, max_size=3),
            ),
            st.builds(
                lambda items: make_list(items),
                st.lists(children, min_size=0, max_size=3),
            ),
        )

    return st.recursive(st.one_of(ATOMS, INTS, variables), build, max_leaves=10)


def _realize(term: Term, pool):
    """Replace ('varname', n) markers with shared Var objects."""
    if isinstance(term, tuple) and len(term) == 2 and term[0] == "varname":
        if term[1] not in pool:
            pool[term[1]] = Var(term[1])
        return pool[term[1]]
    if isinstance(term, Struct):
        return Struct(term.name, tuple(_realize(a, pool) for a in term.args))
    return term


def _realize_linear(term: Term):
    """Every variable occurrence becomes a distinct fresh variable.

    Type trees carry no sharing information, so the *tree-level* unify
    property only holds for linear terms; aliasing is handled at the cell
    level (see the pattern-based tests and test_aunify.py).
    """
    if isinstance(term, tuple) and len(term) == 2 and term[0] == "varname":
        return Var(term[1])
    if isinstance(term, Struct):
        return Struct(term.name, tuple(_realize_linear(a) for a in term.args))
    return term


# ----------------------------------------------------------------------


@settings(max_examples=400)
@given(terms())
def test_alpha_gamma_soundness(raw):
    term = _realize(raw, {})
    for depth in (0, 1, 2, 4):
        assert tree_contains(abstract_term(term, depth), term)


@settings(max_examples=400)
@given(terms(var_names=("X", "Y")), terms(var_names=("U", "V")))
def test_abstract_unify_over_approximates_linear(raw_left, raw_right):
    # Linear terms (every variable occurs once): the mgu is finite and
    # the aliasing-free tree-level unify must over-approximate it.
    left = _realize_linear(raw_left)
    right = _realize_linear(raw_right)
    bindings = Bindings()
    if not unify(left, right, bindings):
        return  # concrete failure: the abstract result is unconstrained
    result = bindings.resolve(left)
    abstract = tree_unify(abstract_term(left), abstract_term(right))
    assert abstract is not None, (
        f"abstract failure on concretely unifiable "
        f"{term_to_text(left)} / {term_to_text(right)}"
    )
    assert tree_contains(abstract, result), (
        f"{term_to_text(result)} escaped "
        f"{abstract} for {term_to_text(left)} / {term_to_text(right)}"
    )


@settings(max_examples=300)
@given(terms(var_names=("X", "Y")), terms(var_names=("U", "V")))
def test_cell_unify_over_approximates_with_sharing(raw_left, raw_right):
    # Repeated variables WITHIN each term are allowed here: the pattern /
    # cell layer preserves sharing, so abstract unification of the
    # materialized abstractions must succeed whenever the concrete terms
    # unify.  (Universes stay disjoint to keep the mgu finite... except
    # repeated vars can still produce cyclic mgus; skip those.)
    left = _realize(raw_left, {})
    right = _realize(raw_right, {})
    bindings = Bindings()
    if not unify(left, right, bindings):
        return
    try:
        result = bindings.resolve(left)
    except RecursionError:
        return  # cyclic (rational-tree) mgu: outside the tested property
    heap = Heap()
    shared = {}
    left_cell = heap.encode(left, shared)
    right_cell = heap.encode(right, shared)
    pattern = abstract_cells(heap, [left_cell, right_cell])
    materialized = materialize_pattern(heap, pattern)
    assert s_unify(heap, materialized[0], materialized[1]), (
        f"abstract failure for {term_to_text(left)} / {term_to_text(right)}"
    )
    from repro.analysis.patterns import tree_of_cell

    unified_tree = tree_of_cell(heap, materialized[0])
    assert tree_contains(unified_tree, result), (
        f"{term_to_text(result)} escaped {unified_tree}"
    )


@settings(max_examples=300)
@given(terms())
def test_cell_s_unify_accepts_own_abstraction(raw):
    term = _realize(raw, {})
    heap = Heap()
    concrete_cell = heap.encode(term)
    pattern = abstract_cells(heap, [concrete_cell])
    materialized = materialize_pattern(heap, pattern)
    assert s_unify(heap, materialized[0], concrete_cell)


@settings(max_examples=300)
@given(terms())
def test_cell_abstraction_stable(raw):
    # Abstracting a materialized pattern gives the pattern back.
    term = _realize(raw, {})
    heap = Heap()
    pattern = abstract_cells(heap, [heap.encode(term)])
    cells = materialize_pattern(heap, pattern)
    assert abstract_cells(heap, cells) == pattern


@settings(max_examples=200)
@given(terms(var_names=("X",)))
def test_any_cell_absorbs_everything(raw):
    term = _realize(raw, {})
    heap = Heap()
    from repro.domain import AbsSort

    any_cell = make_abs(heap, AbsSort.ANY)
    assert s_unify(heap, any_cell, heap.encode(term))


# ----------------------------------------------------------------------
# Engine agreement on generated queries.

LIST_PROGRAM = Program.from_text(
    """
    app([], L, L).
    app([H|T], L, [H|R]) :- app(T, L, R).
    rev([], []).
    rev([H|T], R) :- rev(T, RT), app(RT, [H], R).
    len([], 0).
    len([_|T], N) :- len(T, M), N is M + 1.
    """
)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=9), max_size=6))
def test_wam_matches_solver_on_reverse(items):
    from repro.prolog import Solver
    from repro.wam import Machine, compile_program

    goal = parse_term(
        "rev([" + ", ".join(str(i) for i in items) + "], R)"
    )
    machine = Machine(compile_program(LIST_PROGRAM))
    solver = Solver(LIST_PROGRAM)
    wam_result = machine.run_once(goal)
    solver_result = solver.solve_once(goal)
    assert term_to_text(wam_result["R"]) == term_to_text(solver_result["R"])
    assert term_to_text(wam_result["R"]) == (
        "[" + ", ".join(str(i) for i in reversed(items)) + "]"
    )


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=9), max_size=4),
    st.lists(st.integers(min_value=0, max_value=9), max_size=4),
)
def test_wam_matches_solver_on_append(left, right):
    from repro.prolog import Solver
    from repro.wam import Machine, compile_program

    left_text = "[" + ", ".join(str(i) for i in left) + "]"
    right_text = "[" + ", ".join(str(i) for i in right) + "]"
    goal = parse_term(f"app({left_text}, {right_text}, R)")
    machine = Machine(compile_program(LIST_PROGRAM))
    solver = Solver(LIST_PROGRAM)
    assert term_to_text(machine.run_once(goal)["R"]) == term_to_text(
        solver.solve_once(goal)["R"]
    )
