"""Resource governance and fault tolerance (repro.robust).

Covers the Budget dimensions, FaultPlan determinism, the
degrade-to-⊤ contract of the fixpoint driver (soundness: a degraded
result is always ⊒ the unbudgeted one), per-entry isolation, the
baseline analyzers' partial results, and the Solver's recursion-limit
guard.
"""

import sys

import pytest

from repro import Budget, BudgetExceeded, FaultPlan, InjectedFault, analyze
from repro.analysis.driver import Analyzer
from repro.analysis.patterns import pattern_to_trees
from repro.bench.programs import BENCHMARKS
from repro.domain.lattice import tree_leq
from repro.errors import AnalysisError
from repro.robust import (
    STATUS_DEGRADED,
    STATUS_EXACT,
    STATUS_FAILED,
    all_share_pairs,
    top_success_pattern,
    worse_status,
)

NREV = """
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
"""


class TestBudget:
    def test_unlimited_by_default(self):
        budget = Budget()
        assert budget.unlimited
        assert not budget.governs_steps
        budget.start()
        for _ in range(10_000):
            budget.charge_step()
        budget.charge_iteration()
        budget.charge_table(10**9)

    def test_step_budget_trips(self):
        budget = Budget(max_steps=3).start()
        budget.charge_step()
        budget.charge_step()
        budget.charge_step()
        with pytest.raises(BudgetExceeded) as info:
            budget.charge_step()
        assert info.value.dimension == "steps"

    def test_iteration_budget_trips_with_legacy_message(self):
        budget = Budget(max_iterations=2).start()
        budget.charge_iteration()
        budget.charge_iteration()
        with pytest.raises(BudgetExceeded) as info:
            budget.charge_iteration()
        assert info.value.dimension == "iterations"
        # Pre-budget callers grepped for this wording.
        assert "no fixpoint after 2 iterations" in str(info.value)

    def test_table_budget_trips(self):
        budget = Budget(max_table_entries=5).start()
        budget.charge_table(5)
        with pytest.raises(BudgetExceeded) as info:
            budget.charge_table(6)
        assert info.value.dimension == "table"

    def test_deadline_trips(self):
        budget = Budget(deadline=0.0).start()
        with pytest.raises(BudgetExceeded) as info:
            budget.check_deadline()
        assert info.value.dimension == "deadline"
        assert budget.expired()

    def test_start_resets_counters(self):
        budget = Budget(max_steps=2).start()
        budget.charge_step()
        budget.charge_step()
        budget.start()
        budget.charge_step()  # would trip without the reset
        assert budget.steps_used == 1

    def test_rejects_nonpositive_limits(self):
        with pytest.raises(ValueError):
            Budget(max_steps=0)
        with pytest.raises(ValueError):
            Budget(max_iterations=-1)
        with pytest.raises(ValueError):
            Budget(deadline=-0.5)

    def test_budget_exceeded_is_analysis_error(self):
        # Back-compat: callers catching AnalysisError keep working.
        assert issubclass(BudgetExceeded, AnalysisError)
        assert issubclass(InjectedFault, AnalysisError)


class TestFaultPlan:
    def test_fires_exactly_at_ordinal(self):
        plan = FaultPlan(at_step=3)
        plan.fire("step")
        plan.fire("step")
        with pytest.raises(InjectedFault) as info:
            plan.fire("step")
        assert info.value.site == "step"
        assert info.value.count == 3
        # The counter advanced past the ordinal: it never re-fires.
        plan.fire("step")
        assert plan.counts["step"] == 4
        assert plan.fired == [("step", 3)]

    def test_watches(self):
        plan = FaultPlan(at_unification=1)
        assert plan.watches("unify")
        assert not plan.watches("step")

    def test_rejects_nonpositive_ordinals(self):
        with pytest.raises(ValueError):
            FaultPlan(at_step=0)

    def test_deterministic_across_runs(self):
        """The same plan parameters trip at the same analysis point."""
        counts = []
        for _ in range(2):
            plan = FaultPlan(at_table_update=2)
            with pytest.raises(InjectedFault):
                analyze(NREV, "nrev(glist, var)", fault_plan=plan)
            counts.append(plan.counts["table"])
        assert counts[0] == counts[1] == 2


class TestServeChaosSites:
    """The non-raising serve sites: probe() fires, fire() still raises."""

    def test_probe_fires_at_each_ordinal(self):
        plan = FaultPlan(kill_worker_at_request=[2, 4])
        assert [plan.probe("request") for _ in range(5)] == \
            [False, True, False, True, False]
        assert plan.fired == [("request", 2), ("request", 4)]

    def test_single_int_ordinal_accepted(self):
        plan = FaultPlan(delay_response_at_request=3)
        assert [plan.probe("response") for _ in range(3)] == \
            [False, False, True]

    def test_watches_serve_sites(self):
        plan = FaultPlan(corrupt_store_at_put=1)
        assert plan.watches("store")
        assert not plan.watches("request")
        assert not plan.watches("step")

    def test_probe_never_raises(self):
        plan = FaultPlan(kill_worker_at_request=1)
        assert plan.probe("request") is True  # no InjectedFault

    def test_fire_still_raises_on_analysis_sites(self):
        plan = FaultPlan(at_step=1)
        with pytest.raises(InjectedFault):
            plan.fire("step")

    def test_rejects_nonpositive_serve_ordinals(self):
        with pytest.raises(ValueError):
            FaultPlan(kill_worker_at_request=[1, 0])
        with pytest.raises(ValueError):
            FaultPlan(delay_seconds=-1.0)


class TestWidening:
    def test_top_pattern_is_any(self):
        top = top_success_pattern(3)
        for tree in pattern_to_trees(top):
            # every position is plain 'any'
            from repro.domain.lattice import ANY_T

            assert tree == ANY_T

    def test_all_share_pairs(self):
        assert all_share_pairs(3) == frozenset({(0, 1), (0, 2), (1, 2)})
        assert all_share_pairs(1) == frozenset()

    def test_worse_status_ordering(self):
        assert worse_status(STATUS_EXACT, STATUS_DEGRADED) == STATUS_DEGRADED
        assert worse_status(STATUS_FAILED, STATUS_DEGRADED) == STATUS_FAILED
        assert worse_status(STATUS_EXACT, STATUS_EXACT) == STATUS_EXACT


class TestDegradation:
    def test_raise_is_the_default(self):
        with pytest.raises(BudgetExceeded):
            analyze(NREV, "nrev(glist, var)", budget=Budget(max_steps=5))

    def test_degrade_returns_result(self):
        result = analyze(
            NREV,
            "nrev(glist, var)",
            budget=Budget(max_steps=5),
            on_budget="degrade",
        )
        assert result.status == "degraded"
        (report,) = result.entry_reports
        assert report.status == "degraded"
        assert "step budget" in report.reason
        entry = result.table.find(*_spec_key(result, 0))
        assert entry is not None
        assert entry.status == "degraded"
        assert entry.success == top_success_pattern(2)

    @pytest.mark.parametrize(
        "budget_kwargs",
        [
            {"max_steps": 5},
            {"max_iterations": 1},
            {"max_table_entries": 1},
            {"deadline": 0.0},
        ],
        ids=["steps", "iterations", "table", "deadline"],
    )
    def test_every_dimension_degrades_cleanly(self, budget_kwargs):
        result = analyze(
            NREV,
            "nrev(glist, var)",
            budget=Budget(**budget_kwargs),
            on_budget="degrade",
        )
        assert result.status == "degraded"

    @pytest.mark.parametrize(
        "plan_kwargs",
        [
            {"at_step": 3},
            {"at_unification": 2},
            {"at_table_update": 1},
            {"at_iteration": 2},
        ],
        ids=["step", "unify", "table", "iteration"],
    )
    def test_every_fault_site_degrades_cleanly(self, plan_kwargs):
        plan = FaultPlan(**plan_kwargs)
        result = analyze(
            NREV, "nrev(glist, var)", fault_plan=plan, on_budget="degrade"
        )
        assert result.status == "degraded"
        assert len(plan.fired) == 1
        (report,) = result.entry_reports
        assert "injected fault" in report.reason

    def test_exact_run_reports_exact(self):
        result = analyze(NREV, "nrev(glist, var)")
        assert result.status == "exact"
        assert all(r.status == "exact" for r in result.entry_reports)
        assert result.predicate_status(("nrev", 2)) == "exact"
        assert result.degraded_predicates() == []

    def test_status_surfaces_in_reports(self):
        result = analyze(
            NREV,
            "nrev(glist, var)",
            budget=Budget(max_steps=5),
            on_budget="degrade",
        )
        assert "degraded" in result.to_text()
        data = result.to_dict()
        assert data["status"] == "degraded"
        assert data["entry_reports"][0]["status"] == "degraded"
        assert data["predicates"]["nrev/2"]["status"] == "degraded"

    def test_invalid_on_budget_rejected(self):
        with pytest.raises(ValueError):
            Analyzer(NREV, on_budget="explode")


def _spec_key(result, index):
    spec = result.entries[index]
    return spec.indicator, spec.pattern


class TestSoundness:
    """A degraded result must over-approximate the exact one (⊒)."""

    @pytest.mark.parametrize(
        "bench", BENCHMARKS, ids=[b.name for b in BENCHMARKS]
    )
    def test_degraded_is_superset_of_exact(self, bench):
        exact = Analyzer(bench.source).analyze([bench.entry])
        loose = Analyzer(
            bench.source,
            budget=Budget(max_steps=40),
            on_budget="degrade",
        ).analyze([bench.entry])
        checked = 0
        for indicator, exact_entry in exact.table.all_entries():
            loose_entry = loose.table.find(indicator, exact_entry.calling)
            if loose_entry is None:
                continue  # never reached under budget: nothing claimed
            if loose_entry.status == "exact":
                # untouched by widening: must match the exact run
                assert loose_entry.success == exact_entry.success
                checked += 1
                continue
            checked += 1
            if exact_entry.success is None:
                continue
            for exact_tree, loose_tree in zip(
                pattern_to_trees(exact_entry.success),
                pattern_to_trees(loose_entry.success),
            ):
                assert tree_leq(exact_tree, loose_tree)
            # widened entries also over-approximate sharing
            assert exact_entry.may_share <= loose_entry.may_share
        assert checked > 0


class TestIsolation:
    """A fault in one entry spec must not poison sibling entries."""

    def test_sibling_entry_stays_exact(self):
        plan = FaultPlan(at_table_update=1)  # trips inside the first spec
        result = analyze(
            NREV,
            "nrev(glist, var)",
            "app(glist, glist, var)",
            fault_plan=plan,
            on_budget="degrade",
        )
        nrev_report, app_report = result.entry_reports
        assert nrev_report.status == "degraded"
        assert app_report.status == "exact"
        # The sibling's table entries equal a solo, unbudgeted run.
        solo = analyze(NREV, "app(glist, glist, var)")
        spec = result.entries[1]
        entry = result.table.find(spec.indicator, spec.pattern)
        solo_entry = solo.table.find(spec.indicator, spec.pattern)
        assert entry.success == solo_entry.success
        assert entry.status == "exact"
        assert result.predicate_status(("app", 3)) == "exact"

    def test_failed_entry_does_not_poison_siblings(self):
        program = """
        good(X, Y) :- app([X], [], Y).
        app([], L, L).
        app([H|T], L, [H|R]) :- app(T, L, R).
        bad :- undefined_thing.
        """
        result = analyze(
            program,
            "bad",
            "good(g, var)",
            on_undefined="error",
            on_budget="degrade",
        )
        bad_report, good_report = result.entry_reports
        assert bad_report.status == "failed"
        assert good_report.status == "exact"
        assert result.status == "failed"

    def test_per_spec_isolation_matches_joint_fixpoint(self):
        """Exact multi-entry analysis is unchanged by the isolation
        restructure: the merged table equals the joint fixpoint."""
        joint = analyze(NREV, "nrev(glist, var)", "app(anylist, glist, var)")
        assert joint.status == "exact"
        for entry_text in ("nrev(glist, var)", "app(anylist, glist, var)"):
            solo = analyze(NREV, entry_text)
            for indicator, solo_entry in solo.table.all_entries():
                merged = joint.table.find(indicator, solo_entry.calling)
                assert merged is not None
                assert merged.success == solo_entry.success


class TestBaselines:
    def test_meta_degrades(self):
        from repro.baselines.meta import MetaAnalyzer

        analyzer = MetaAnalyzer(
            NREV, budget=Budget(max_steps=2), on_budget="degrade"
        )
        result = analyzer.analyze(["nrev(glist, var)"])
        assert result.status == "degraded"

    def test_meta_attaches_partial_on_raise(self):
        from repro.baselines.meta import MetaAnalyzer

        analyzer = MetaAnalyzer(NREV, budget=Budget(max_steps=2))
        with pytest.raises(AnalysisError) as info:
            analyzer.analyze(["nrev(glist, var)"])
        partial = info.value.partial_result
        assert partial is not None
        assert partial.status == "degraded"
        # the partial table is widened, hence sound
        for _, entry in partial.table.all_entries():
            assert entry.status == "degraded"

    def test_prolog_baseline_degrades(self):
        from repro.baselines.prolog_analyzer import PrologAnalyzer

        analyzer = PrologAnalyzer(
            NREV, budget=Budget(max_iterations=1), on_budget="degrade"
        )
        result = analyzer.analyze(["nrev(glist, var)"])
        assert result.status == "degraded"

    def test_transform_degrades(self):
        from repro.baselines.transform import TransformAnalyzer

        analyzer = TransformAnalyzer(
            NREV, budget=Budget(max_iterations=1), on_budget="degrade"
        )
        result = analyzer.analyze(["nrev(glist, var)"])
        assert result.status == "degraded"

    def test_transform_attaches_partial_on_raise(self):
        from repro.baselines.transform import TransformAnalyzer

        analyzer = TransformAnalyzer(NREV, budget=Budget(max_iterations=1))
        with pytest.raises(AnalysisError) as info:
            analyzer.analyze(["nrev(glist, var)"])
        assert info.value.partial_result is not None
        assert info.value.partial_result.status == "degraded"

    def test_meta_exact_still_matches_compiled(self):
        from repro.baselines.meta import MetaAnalyzer

        compiled = analyze(NREV, "nrev(glist, var)")
        meta = MetaAnalyzer(NREV).analyze(["nrev(glist, var)"])
        assert meta.status == "exact"
        for indicator, entry in compiled.table.all_entries():
            if indicator[0].startswith("$"):
                continue
            meta_entry = meta.table.find(indicator, entry.calling)
            assert meta_entry is not None
            assert meta_entry.success == entry.success


class TestSolverGuard:
    def test_recursion_limit_never_lowered(self):
        from repro.prolog.program import Program
        from repro.prolog.solver import Solver, _MIN_RECURSION_LIMIT

        original = sys.getrecursionlimit()
        higher = max(original, _MIN_RECURSION_LIMIT) + 10_000
        try:
            sys.setrecursionlimit(higher)
            Solver(Program.from_text("p.\n"))
            assert sys.getrecursionlimit() == higher
        finally:
            sys.setrecursionlimit(original)

    def test_recursion_limit_raised_when_low(self):
        from repro.prolog.program import Program
        from repro.prolog.solver import Solver, _MIN_RECURSION_LIMIT

        original = sys.getrecursionlimit()
        try:
            if original > _MIN_RECURSION_LIMIT:
                sys.setrecursionlimit(1000)
            Solver(Program.from_text("p.\n"))
            assert sys.getrecursionlimit() >= _MIN_RECURSION_LIMIT
        finally:
            sys.setrecursionlimit(max(original, sys.getrecursionlimit()))

    def test_solver_respects_budget_deadline(self):
        from repro.errors import BudgetExceeded
        from repro.prolog.parser import parse_term
        from repro.prolog.program import Program
        from repro.prolog.solver import Solver

        # An already-expired deadline: the stride probe must trip.
        budget = Budget(deadline=0.0).start()
        solver = Solver(
            Program.from_text(
                "count(0).\ncount(N) :- N > 0, M is N - 1, count(M).\n"
            ),
            budget=budget,
        )
        with pytest.raises(BudgetExceeded):
            solver.solve_once(parse_term("count(10000)"))
