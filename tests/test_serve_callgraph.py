"""Call graph and Merkle SCC fingerprints (repro.serve.callgraph)."""

from repro.analysis.driver import Analyzer
from repro.prolog.program import Program
from repro.serve.callgraph import CallGraph, call_edges
from repro.serve.fingerprint import predicate_fingerprints

MUTUAL = """
even(0).
even(s(N)) :- odd(N).
odd(s(N)) :- even(N).
top :- even(s(s(0))).
side :- odd(s(0)).
island(a).
"""


def _graph(text):
    program = Program.from_text(text)
    analyzer = Analyzer(program)
    return program, CallGraph.from_compiled(analyzer.compiled)


def test_call_edges_from_wam_code():
    program, _ = _graph(MUTUAL)
    edges = call_edges(Analyzer(program).compiled)
    assert edges[("even", 1)] == [("odd", 1)]
    assert edges[("odd", 1)] == [("even", 1)]
    assert edges[("top", 0)] == [("even", 1)]
    assert edges[("island", 1)] == []
    assert not any(ind[0].startswith("$query") for ind in edges)


def test_scc_condensation_groups_mutual_recursion():
    _, graph = _graph(MUTUAL)
    assert graph.scc_of[("even", 1)] == graph.scc_of[("odd", 1)]
    assert graph.scc_of[("top", 0)] != graph.scc_of[("even", 1)]
    even_odd = graph.sccs[graph.scc_of[("even", 1)]]
    assert set(even_odd) == {("even", 1), ("odd", 1)}


def test_sccs_emitted_callees_first():
    _, graph = _graph(MUTUAL)
    for source, targets in graph.scc_calls.items():
        for target in targets:
            assert target < source, "callee SCC must precede caller"


def test_control_constructs_become_real_edges():
    _, graph = _graph("p(X) :- (X = a ; q(X)).\nq(b).\n")
    # p calls the synthetic $or predicate which calls q: q's SCC is
    # reachable from p even though the source call sits inside ';'.
    reachable = graph.reachable_sccs([("p", 1)])
    assert graph.scc_of[("q", 1)] in reachable


def test_reachable_sccs_bottom_up_and_partial():
    _, graph = _graph(MUTUAL)
    reachable = graph.reachable_sccs([("top", 0)])
    assert graph.scc_of[("island", 1)] not in reachable
    assert graph.scc_of[("side", 0)] not in reachable
    assert graph.scc_of[("even", 1)] in reachable
    assert reachable == sorted(reachable)
    # undefined entry roots are ignored, not an error
    assert graph.reachable_sccs([("nope", 3)]) == []


def test_callers_closure():
    _, graph = _graph(MUTUAL)
    dirty = {graph.scc_of[("even", 1)]}
    closure = graph.callers_closure(dirty)
    assert graph.scc_of[("top", 0)] in closure
    assert graph.scc_of[("side", 0)] in closure
    assert graph.scc_of[("island", 1)] not in closure


def test_undefined_callees_are_leaf_nodes():
    _, graph = _graph("p :- missing(1).\n")
    assert ("missing", 1) in graph.scc_of
    missing_scc = graph.scc_of[("missing", 1)]
    assert graph.scc_calls[missing_scc] == frozenset()


# ----------------------------------------------------------------------
# Merkle invalidation scope: an edit dirties exactly its own SCC and
# the transitive callers — nothing else.


def test_merkle_invalidation_scope():
    program, graph = _graph(MUTUAL)
    base = graph.merkle_fingerprints(predicate_fingerprints(program))

    edited_program, edited_graph = _graph(
        MUTUAL.replace("odd(s(N)) :- even(N).",
                       "odd(s(N)) :- even(N).\nodd(x).")
    )
    edited = edited_graph.merkle_fingerprints(
        predicate_fingerprints(edited_program)
    )
    # Same program shape → same condensation, comparable index-by-index.
    assert edited_graph.sccs == graph.sccs
    changed = {i for i in range(len(base)) if base[i] != edited[i]}
    expected = graph.callers_closure({graph.scc_of[("odd", 1)]})
    assert changed == expected
    # island and the leaf-free predicates kept their fingerprints
    assert base[graph.scc_of[("island", 1)]] == \
        edited[graph.scc_of[("island", 1)]]


def test_merkle_covers_callees():
    # Editing a callee changes the caller's Merkle fingerprint even
    # though the caller's own clauses are untouched.
    program, graph = _graph(MUTUAL)
    base = graph.merkle_fingerprints(predicate_fingerprints(program))
    edited_program, edited_graph = _graph(
        MUTUAL.replace("even(0).", "even(0).\neven(zero).")
    )
    edited = edited_graph.merkle_fingerprints(
        predicate_fingerprints(edited_program)
    )
    top = graph.scc_of[("top", 0)]
    assert base[top] != edited[top]


def test_to_dict_is_json_shaped():
    _, graph = _graph(MUTUAL)
    view = graph.to_dict()
    assert isinstance(view["sccs"], list)
    assert all(isinstance(name, str) for scc in view["sccs"] for name in scc)
