"""End-to-end chaos: crash recovery, store abuse, the campaign itself.

The acceptance contract: whatever is killed, corrupted, or truncated,
the service restarts/continues successfully, damaged cache entries are
quarantined (a performance cost, never a soundness one), and every
served result equals a from-scratch ``analyze()`` of the same text.
"""

import json
import os

import pytest

from repro.analysis.driver import Analyzer
from repro.prolog.program import Program
from repro.robust import FaultPlan
from repro.serve import (
    HIT,
    AnalysisService,
    ServiceConfig,
    Supervisor,
    SupervisorConfig,
)

NREV = """
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).
append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).
"""

QSORT = """
qsort([], R, R).
qsort([X|L], R, R0) :-
    partition(L, X, L1, L2),
    qsort(L2, R1, R0),
    qsort(L1, R, [X|R1]).
partition([], _, [], []).
partition([X|L], Y, [X|L1], L2) :- X =< Y, !, partition(L, Y, L1, L2).
partition([X|L], Y, L1, [X|L2]) :- partition(L, Y, L1, L2).
"""

PROGRAMS = [
    ("nrev", NREV, "nrev(glist, var)"),
    ("qsort", QSORT, "qsort(glist, var, g)"),
]


def _scratch(text, entry):
    return Analyzer(Program.from_text(text)).analyze([entry]).stable_dict()


def _supervisor(store_dir, fault_plan=None, workers=1):
    return Supervisor(
        ServiceConfig(store_dir=store_dir, journal=True),
        SupervisorConfig(
            workers=workers, max_retries=2, backoff_base=0.01, grace=0.2
        ),
        fault_plan=fault_plan,
    )


# ----------------------------------------------------------------------
# Satellite: crash recovery property — kill a worker mid-analysis,
# restart the service on the same store directory, warm-start results
# must equal from-scratch analysis.


@pytest.mark.parametrize("name,text,entry", PROGRAMS)
def test_kill_mid_analysis_then_warm_restart_equals_scratch(
    tmp_path, name, text, entry
):
    store = str(tmp_path / "store")
    request = {"op": "analyze", "text": text, "entries": [entry]}
    expected = _scratch(text, entry)
    # First service: the worker is SIGKILLed mid-analysis (chaos fires
    # on receipt of the very first request), retried on a fresh worker.
    first = _supervisor(store, fault_plan=FaultPlan(kill_worker_at_request=1))
    try:
        response = first.handle(dict(request))
        assert response["ok"] and response["result"] == expected
        assert first.stats()["crashes_survived"] == 1
    finally:
        first.close()
    # Second service, same store directory: must start (journal replay,
    # quarantine — not a crash) and answer warm with the exact result.
    second = _supervisor(store)
    try:
        warm = second.handle(dict(request))
    finally:
        second.close()
    assert warm["ok"] and warm["result"] == expected
    assert warm["status"] == "exact"
    assert warm["cache"]["outcome"] == HIT


def test_kill_exhausting_retries_leaves_store_consistent(tmp_path):
    """Even when the crash wins (retries exhausted), the store left
    behind yields only correct answers."""
    store = str(tmp_path / "store")
    request = {"op": "analyze", "text": NREV, "entries": ["nrev(glist, var)"]}
    first = Supervisor(
        ServiceConfig(store_dir=store, journal=True),
        SupervisorConfig(workers=1, max_retries=0, backoff_base=0.01),
        fault_plan=FaultPlan(kill_worker_at_request=1),
    )
    try:
        failed = first.handle(dict(request))
        assert failed["ok"] is False and failed["retriable"] is True
    finally:
        first.close()
    second = _supervisor(store)
    try:
        response = second.handle(dict(request))
    finally:
        second.close()
    assert response["ok"]
    assert response["result"] == _scratch(NREV, "nrev(glist, var)")


# ----------------------------------------------------------------------
# Acceptance: store recovery — truncated journal + corrupt entry file.


def test_truncated_journal_and_corrupt_entry_recover(tmp_path):
    store = str(tmp_path / "store")
    request = {"op": "analyze", "text": NREV, "entries": ["nrev(glist, var)"]}
    expected = _scratch(NREV, "nrev(glist, var)")
    service = AnalysisService(ServiceConfig(store_dir=store, journal=True))
    assert service.handle(dict(request))["ok"]
    service.store.disk.close()
    # Corrupt one entry file...
    names = [n for n in os.listdir(store) if n.endswith(".json")]
    assert names
    victim = os.path.join(store, sorted(names)[0])
    with open(victim, "rb") as handle:
        blob = bytearray(handle.read())
    blob[len(blob) // 2] ^= 0xFF
    with open(victim, "wb") as handle:
        handle.write(blob)
    # ...and truncate the journal mid-byte.
    journal = os.path.join(store, "journal.jsonl")
    size = os.path.getsize(journal)
    with open(journal, "ab") as handle:
        handle.truncate(max(1, size // 2))
    # Startup must succeed; requests must be correct; the damaged entry
    # is either healed (journal) or quarantined (checksum), never served.
    revived = AnalysisService(ServiceConfig(store_dir=store, journal=True))
    response = revived.handle(dict(request))
    assert response["ok"] and response["result"] == expected
    assert response["status"] == "exact"
    disk = revived.store.disk.stats()
    assert disk["journal_replayed"] + disk["quarantined"] >= 1


def test_quarantined_entry_costs_performance_not_soundness(tmp_path):
    """Corrupting every entry file degrades the cache to cold misses —
    the responses stay exactly right."""
    store = str(tmp_path / "store")
    request = {"op": "analyze", "text": QSORT, "entries": ["qsort(glist, var, g)"]}
    expected = _scratch(QSORT, "qsort(glist, var, g)")
    service = AnalysisService(ServiceConfig(store_dir=store))  # no journal
    assert service.handle(dict(request))["ok"]
    for name in os.listdir(store):
        if name.endswith(".json"):
            with open(os.path.join(store, name), "w") as handle:
                handle.write("{half a rec")
    revived = AnalysisService(ServiceConfig(store_dir=store))
    response = revived.handle(dict(request))
    assert response["ok"] and response["result"] == expected
    assert response["cache"]["outcome"] != HIT  # nothing corrupt served
    assert revived.store.disk.quarantined >= 1


# ----------------------------------------------------------------------
# The campaign, scaled down: every chaos mode in one deterministic run.


def test_chaos_campaign_small():
    from repro.bench.chaos import run

    document = run(
        requests=24, workers=2, kill_every=7, corrupt_every=9,
        request_timeout=30.0, delay_index=11,
    )
    assert document["requests_served"] == 24
    assert document["kills_survived"] == document["kills_injected"] == 3
    assert document["timeouts"] == 1
    assert document["structured_errors"] == 1  # the timeout; kills retried
    assert document["exact_responses"] == 23
    assert document["store_corruptions"] >= 1
    assert document["latency"]["isolated"]["p50_ms"] > 0
    assert document["latency"]["in_process"]["p50_ms"] > 0
