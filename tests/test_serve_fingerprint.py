"""Content-addressed fingerprints (repro.serve.fingerprint).

The load-bearing properties: fingerprints are stable across processes
(independent of PYTHONHASHSEED, dict order, object identity), invariant
under α-renaming of clause variables, and sensitive to every semantic
change (clause body, clause order, added clauses, config knobs).
"""

import json
import os
import subprocess
import sys
import textwrap

from repro.analysis.driver import parse_entry_spec
from repro.prolog.program import Program
from repro.serve.fingerprint import (
    clause_fingerprint,
    config_fingerprint,
    entry_fingerprint,
    predicate_fingerprint,
    predicate_fingerprints,
    program_fingerprint,
    request_fingerprint,
)

NREV = """
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).
append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).
"""


def _clause(text):
    program = Program.from_text(text)
    [predicate] = program.predicates.values()
    [clause] = predicate.clauses
    return clause


# ----------------------------------------------------------------------
# α-equivalence and sensitivity.


def test_alpha_renaming_is_invisible():
    left = _clause("p(X, Y, [X|Z]) :- q(Y, Z), r(X).")
    right = _clause("p(A, B, [A|C]) :- q(B, C), r(A).")
    assert clause_fingerprint(left) == clause_fingerprint(right)


def test_distinct_variable_structure_is_visible():
    # Same shape, but the repeated variable is a different one.
    left = _clause("p(X, Y) :- q(X).")
    right = _clause("p(X, Y) :- q(Y).")
    assert clause_fingerprint(left) != clause_fingerprint(right)


def test_atom_versus_variable_is_visible():
    assert clause_fingerprint(_clause("p(x).")) != clause_fingerprint(
        _clause("p(X).")
    )


def test_clause_body_change_is_visible():
    left = _clause("p(X) :- q(X).")
    right = _clause("p(X) :- r(X).")
    assert clause_fingerprint(left) != clause_fingerprint(right)


def test_clause_order_matters_for_predicates():
    forward = Program.from_text("p(a).\np(b).\n")
    backward = Program.from_text("p(b).\np(a).\n")
    fps_f = predicate_fingerprints(forward)
    fps_b = predicate_fingerprints(backward)
    assert fps_f[("p", 1)] != fps_b[("p", 1)]


def test_added_clause_changes_only_its_predicate():
    base = predicate_fingerprints(Program.from_text(NREV))
    edited = predicate_fingerprints(
        Program.from_text(NREV + "\nnrev([x], [x]).\n")
    )
    assert base[("nrev", 2)] != edited[("nrev", 2)]
    assert base[("append", 3)] == edited[("append", 3)]


def test_program_fingerprint_covers_directives():
    with_directive = Program.from_text(":- dynamic(p/1).\np(a).\n")
    without = Program.from_text("p(a).\n")
    assert program_fingerprint(with_directive) != program_fingerprint(without)


def test_config_fingerprint_distinguishes_knobs():
    base = dict(
        depth=4, list_aware=True, subsumption=False,
        on_undefined="error", environment_trimming=True,
    )
    fp = config_fingerprint(**base)
    for key, value in (
        ("depth", 5),
        ("list_aware", False),
        ("subsumption", True),
        ("on_undefined", "top"),
        ("environment_trimming", False),
    ):
        assert fp != config_fingerprint(**{**base, key: value}), key


def test_entry_fingerprint_covers_pattern():
    assert entry_fingerprint(parse_entry_spec("nrev(glist, var)")) != \
        entry_fingerprint(parse_entry_spec("nrev(any, var)"))


def test_request_fingerprint_ignores_scc_order():
    assert request_fingerprint("c", ["e"], ["s1", "s2"]) == \
        request_fingerprint("c", ["e"], ["s2", "s1"])
    assert request_fingerprint("c", ["e"], ["s1"]) != \
        request_fingerprint("c", ["e"], ["s1", "s2"])


# ----------------------------------------------------------------------
# Process independence: the satellite check.  The same program must
# fingerprint identically in two subprocesses with different
# PYTHONHASHSEED values — nothing process-specific may leak in.

_SUBPROCESS_SCRIPT = textwrap.dedent(
    """
    import json, sys
    from repro.prolog.program import Program
    from repro.serve.fingerprint import (
        predicate_fingerprints, program_fingerprint,
    )
    from repro.prolog.terms import format_indicator
    program = Program.from_text(sys.stdin.read())
    fps = {
        format_indicator(ind): fp
        for ind, fp in predicate_fingerprints(program).items()
    }
    print(json.dumps({
        "program": program_fingerprint(program),
        "predicates": fps,
    }, sort_keys=True))
    """
)


def _fingerprints_with_hashseed(seed: str) -> dict:
    environment = dict(os.environ)
    environment["PYTHONHASHSEED"] = seed
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    environment["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + \
        environment.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_SCRIPT],
        input=NREV, capture_output=True, text=True,
        env=environment, check=True,
    )
    return json.loads(completed.stdout)


def test_fingerprints_stable_across_hash_seeds():
    first = _fingerprints_with_hashseed("0")
    second = _fingerprints_with_hashseed("12345")
    assert first == second
    # and the in-process value agrees with both
    local = {
        "program": program_fingerprint(Program.from_text(NREV)),
        "predicates": {
            f"{ind[0]}/{ind[1]}": fp
            for ind, fp in predicate_fingerprints(
                Program.from_text(NREV)
            ).items()
        },
    }
    assert local == first


def test_undefined_predicate_has_stable_fingerprint():
    assert predicate_fingerprint([]) == predicate_fingerprint([])
    assert predicate_fingerprint([]) != predicate_fingerprint(
        [_clause("p(a).")]
    )
