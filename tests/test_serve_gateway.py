"""The sharded gateway (repro.serve.gateway + repro.serve.shard).

The contract under test: routing is deterministic and stable, every
served (non-shed) response equals a from-scratch ``analyze()``, overload
is answered with *structured* shed responses instead of unbounded
queues, degraded-under-load responses are explicitly marked, a dead
backend costs at most one structured error before the shard respawns
and is warmed up, and protocol abuse (oversized lines, torn
connections) never takes the gateway down.
"""

import asyncio
import json
import threading
import time

import pytest

from repro.analysis.driver import Analyzer
from repro.prolog.program import Program
from repro.serve import (
    ConsistentHashRing,
    Gateway,
    GatewayConfig,
    ServiceConfig,
    ShardSaturated,
    route_key,
    shed_response,
)
from repro.serve.service import AnalysisService
from repro.serve.shard import Shard, ShardConfig

NREV = """
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).
append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).
"""

QSORT = """
qsort([], R, R).
qsort([X|L], R, R0) :-
    partition(L, X, L1, L2),
    qsort(L2, R1, R0),
    qsort(L1, R, [X|R1]).
partition([], _, [], []).
partition([X|L], Y, [X|L1], L2) :- X =< Y, !, partition(L, Y, L1, L2).
partition([X|L], Y, L1, [X|L2]) :- partition(L, Y, L1, L2).
"""

PROGRAMS = [
    (NREV, "nrev(glist, var)"),
    (QSORT, "qsort(glist, var, g)"),
]


def _scratch(text, entry):
    return Analyzer(Program.from_text(text)).analyze([entry]).stable_dict()


async def _connect(gateway):
    host, port = gateway.address
    return await asyncio.open_connection(host, port)


async def _ask(reader, writer, payload):
    writer.write((json.dumps(payload) + "\n").encode("utf-8"))
    await writer.drain()
    return json.loads(await reader.readline())


# ----------------------------------------------------------------------
# Consistent hashing.


def test_ring_is_deterministic_and_uses_every_shard():
    keys = [f"text:program-{index}" for index in range(200)]
    first = ConsistentHashRing(range(4))
    second = ConsistentHashRing(range(4))
    owners = [first.route(key) for key in keys]
    assert owners == [second.route(key) for key in keys]
    assert set(owners) == {0, 1, 2, 3}


def test_ring_moves_few_keys_when_a_shard_joins():
    keys = [f"text:program-{index}" for index in range(500)]
    before = ConsistentHashRing(range(4))
    after = ConsistentHashRing(range(5))
    moved = sum(
        1 for key in keys if before.route(key) != after.route(key)
    )
    # Consistent hashing: ~1/5 of the keyspace moves, not most of it.
    assert moved < len(keys) // 2


def test_route_key_prefers_text_then_file():
    assert route_key({"text": "a(x).", "file": "f.pl"}) == "text:a(x)."
    assert route_key({"file": "f.pl"}) == "file:f.pl"
    assert route_key({"op": "stats"}) == "op:stats"


def test_shed_response_is_structured_and_retriable():
    response = shed_response(
        {"op": "analyze", "id": 7}, "queue-full", shard=1
    )
    assert response["ok"] is False
    assert response["error_kind"] == "shed"
    assert response["shed"] is True
    assert response["reason"] == "queue-full"
    assert response["retriable"] is True
    assert response["shard"] == 1
    assert response["id"] == 7
    assert "retry_after_ms" not in response  # only when estimable


def test_shed_response_carries_retry_after_hint():
    response = shed_response(
        {"op": "analyze"}, "queue-full", retry_after_ms=123.4567
    )
    assert response["retry_after_ms"] == 123.457


# ----------------------------------------------------------------------
# Correctness through the socket: served == from-scratch.


def test_gateway_round_trip_equals_scratch():
    async def scenario():
        gateway = Gateway(
            GatewayConfig(shards=2, workers=0), ServiceConfig()
        )
        await gateway.start()
        reader, writer = await _connect(gateway)
        try:
            shards_seen = set()
            for text, entry in PROGRAMS:
                response = await _ask(reader, writer, {
                    "op": "analyze", "text": text, "entries": [entry],
                })
                assert response["ok"], response
                assert response["status"] == "exact"
                assert response["result"] == _scratch(text, entry)
                shards_seen.add(response["shard"])
            # Same program again: same shard (stable routing), warm.
            response = await _ask(reader, writer, {
                "op": "analyze", "text": NREV,
                "entries": ["nrev(glist, var)"],
            })
            assert response["cache"]["outcome"] == "hit"
        finally:
            writer.close()
            await gateway.stop()

    asyncio.run(scenario())


def test_responses_correlate_by_id_when_pipelined():
    async def scenario():
        gateway = Gateway(
            GatewayConfig(shards=2, workers=0), ServiceConfig()
        )
        await gateway.start()
        reader, writer = await _connect(gateway)
        try:
            for index, (text, entry) in enumerate(PROGRAMS * 2):
                writer.write((json.dumps({
                    "op": "analyze", "text": text, "entries": [entry],
                    "id": index,
                }) + "\n").encode("utf-8"))
            await writer.drain()
            answers = {}
            for _ in range(len(PROGRAMS) * 2):
                response = json.loads(await reader.readline())
                answers[response["id"]] = response
            assert sorted(answers) == list(range(len(PROGRAMS) * 2))
            for index, (text, entry) in enumerate(PROGRAMS * 2):
                assert answers[index]["ok"]
                assert answers[index]["result"] == _scratch(text, entry)
        finally:
            writer.close()
            await gateway.stop()

    asyncio.run(scenario())


# ----------------------------------------------------------------------
# Admission control and load shedding (controlled fake backends).


class _BlockingBackend:
    """A backend whose handle() blocks until released; records payloads."""

    def __init__(self):
        self.release = threading.Event()
        self.payloads = []

    def handle(self, request):
        self.payloads.append(dict(request))
        assert self.release.wait(timeout=30.0), "test never released backend"
        return {"ok": True, "status": "exact", "echo": True}

    def close(self):
        self.release.set()


async def _wait_for_pickup(backends, count=1, shard_id=0, timeout=10.0):
    """Until the (lazily spawned) backend exists and the dispatch
    thread has handed it ``count`` requests (they then block on its
    release event).  Returns the backend."""
    deadline = time.monotonic() + timeout
    while (
        shard_id not in backends
        or len(backends[shard_id].payloads) < count
    ):
        assert time.monotonic() < deadline, "backend never picked up work"
        await asyncio.sleep(0.01)
    return backends[shard_id]


def test_queue_full_requests_are_shed_not_queued():
    async def scenario():
        backends = {}

        def factory(shard_id):
            backends[shard_id] = _BlockingBackend()
            return backends[shard_id]

        gateway = Gateway(
            GatewayConfig(shards=1, workers=0, queue_depth=2,
                          degrade_depth=2),
            backend_factory=factory,
        )
        await gateway.start()
        reader, writer = await _connect(gateway)
        try:
            # One request occupies the backend, two fill the queue;
            # everything past that must shed immediately.
            writer.write((json.dumps({
                "op": "analyze", "text": "a(x).", "id": 0,
            }) + "\n").encode("utf-8"))
            await writer.drain()
            await _wait_for_pickup(backends)
            for index in range(1, 6):
                writer.write((json.dumps({
                    "op": "analyze", "text": "a(x).", "id": index,
                }) + "\n").encode("utf-8"))
            await writer.drain()
            shed = []
            served = []
            # The 3 overflow responses arrive while the backend is
            # still blocked — shedding never waits on the backend.
            for _ in range(3):
                response = json.loads(await reader.readline())
                assert response["shed"] is True, response
                assert response["reason"] == "queue-full"
                assert response["error_kind"] == "shed"
                # Queue-full sheds carry the backoff hint (the smoothed
                # wait estimate; 0.0 here — nothing served yet).
                assert response["retry_after_ms"] >= 0.0
                shed.append(response["id"])
            backends[0].release.set()
            for _ in range(3):
                response = json.loads(await reader.readline())
                assert response.get("echo") is True
                served.append(response["id"])
            assert len(set(shed) | set(served)) == 6
        finally:
            writer.close()
            await gateway.stop()

    asyncio.run(scenario())


def test_degrade_budget_applied_above_soft_threshold():
    async def scenario():
        backends = {}

        def factory(shard_id):
            backends[shard_id] = _BlockingBackend()
            return backends[shard_id]

        gateway = Gateway(
            GatewayConfig(shards=1, workers=0, queue_depth=8,
                          degrade_depth=2, degrade_max_steps=99,
                          degrade_max_iterations=3),
            backend_factory=factory,
        )
        await gateway.start()
        reader, writer = await _connect(gateway)
        try:
            for index in range(4):
                writer.write((json.dumps({
                    "op": "analyze", "text": "a(x).", "id": index,
                }) + "\n").encode("utf-8"))
            await writer.drain()
            await asyncio.sleep(0.3)  # let the queue build up
            backends[0].release.set()
            answers = {}
            for _ in range(4):
                response = json.loads(await reader.readline())
                answers[response["id"]] = response
            degraded = [
                index for index, response in answers.items()
                if response.get("degraded_by_gateway")
            ]
            assert degraded, "no request got the degrade budget"
            # The backend saw the tightened budget on those requests.
            tight = [
                payload for payload in backends[0].payloads
                if payload.get("budget")
            ]
            assert tight
            for payload in tight:
                assert payload["budget"]["max_steps"] == 99
                assert payload["budget"]["max_iterations"] == 3
                assert payload["on_budget"] == "degrade"
        finally:
            writer.close()
            await gateway.stop()

    asyncio.run(scenario())


def test_deadline_unreachable_requests_shed_at_admission():
    async def scenario():
        backends = {}

        def factory(shard_id):
            backends[shard_id] = _BlockingBackend()
            return backends[shard_id]

        gateway = Gateway(
            GatewayConfig(shards=1, workers=0, queue_depth=64),
            backend_factory=factory,
        )
        await gateway.start()
        reader, writer = await _connect(gateway)
        try:
            # Pretend the shard is slow (smoothed latency 10s/request);
            # occupy the backend and park one filler in the queue so
            # estimated_wait = depth × ewma is 10s at admission time.
            gateway.shards[0].ewma_seconds = 10.0
            writer.write((json.dumps({
                "op": "analyze", "text": "a(x).", "id": 0,
            }) + "\n").encode("utf-8"))
            await writer.drain()
            await _wait_for_pickup(backends)
            writer.write((json.dumps({
                "op": "analyze", "text": "a(x).", "id": 1,
            }) + "\n").encode("utf-8"))
            writer.write((json.dumps({
                "op": "analyze", "text": "a(x).", "id": 2,
                "budget": {"deadline": 0.5},
            }) + "\n").encode("utf-8"))
            await writer.drain()
            response = json.loads(await reader.readline())
            assert response["id"] == 2  # shed immediately, first out
            assert response["shed"] is True
            assert response["reason"] == "deadline-unreachable"
            backends[0].release.set()
            answers = {}
            for _ in range(2):
                response = json.loads(await reader.readline())
                answers[response["id"]] = response
            assert answers[0].get("echo") and answers[1].get("echo")
        finally:
            writer.close()
            await gateway.stop()

    asyncio.run(scenario())


def test_lapsed_deadline_is_shed_at_dequeue():
    async def scenario():
        backends = {}

        def factory(shard_id):
            backends[shard_id] = _BlockingBackend()
            return backends[shard_id]

        gateway = Gateway(
            GatewayConfig(shards=1, workers=0, queue_depth=8),
            backend_factory=factory,
        )
        await gateway.start()
        reader, writer = await _connect(gateway)
        try:
            writer.write((json.dumps({
                "op": "analyze", "text": "a(x).", "id": 0,
            }) + "\n").encode("utf-8"))
            writer.write((json.dumps({
                "op": "analyze", "text": "a(x).", "id": 1,
                "budget": {"deadline": 0.2},
            }) + "\n").encode("utf-8"))
            await writer.drain()
            await asyncio.sleep(0.5)  # id=1 lapses while queued
            backends[0].release.set()
            answers = {}
            for _ in range(2):
                response = json.loads(await reader.readline())
                answers[response["id"]] = response
            assert answers[0].get("echo")
            assert answers[1]["shed"] is True
            assert answers[1]["reason"] == "deadline-lapsed"
        finally:
            writer.close()
            await gateway.stop()

    asyncio.run(scenario())


# ----------------------------------------------------------------------
# Self-healing: backend death → structured error → respawn → warm.


class _Breakable:
    def __init__(self, service):
        self.service = service
        self.broken = False

    def handle(self, request):
        if self.broken:
            raise RuntimeError("backend died")
        return self.service.handle(request)


def test_shard_respawns_and_warms_up_after_backend_death():
    async def scenario():
        created = []

        def factory(shard_id):
            backend = _Breakable(AnalysisService(ServiceConfig()))
            created.append(backend)
            return backend

        gateway = Gateway(
            GatewayConfig(shards=1, workers=0),
            backend_factory=factory,
        )
        await gateway.start()
        reader, writer = await _connect(gateway)
        try:
            request = {
                "op": "analyze", "text": NREV,
                "entries": ["nrev(glist, var)"],
            }
            first = await _ask(reader, writer, dict(request))
            assert first["ok"] and first["status"] == "exact"
            created[-1].broken = True
            # The dead backend costs exactly one structured error...
            failed = await _ask(reader, writer, dict(request))
            assert failed["ok"] is False
            assert failed["error_kind"] == "shard-failure"
            assert failed["retriable"] is True
            # ...then the shard respawns, warm-replays the hot set,
            # and serves the same answer as a from-scratch analyze.
            healed = await _ask(reader, writer, dict(request))
            assert healed["ok"], healed
            assert healed["result"] == _scratch(NREV, "nrev(glist, var)")
            stats = gateway.shards[0].stats()
            assert stats["respawns"] == 1
            assert stats["warmed"] >= 1
            assert len(created) == 2
            # The warm replay primed the fresh backend's cache.
            assert healed["cache"]["outcome"] == "hit"
        finally:
            writer.close()
            await gateway.stop()

    asyncio.run(scenario())


# ----------------------------------------------------------------------
# Protocol abuse over the socket.


def test_oversized_line_is_shed_and_next_request_survives():
    async def scenario():
        gateway = Gateway(
            GatewayConfig(shards=1, workers=0, max_line_bytes=4096),
            ServiceConfig(),
        )
        await gateway.start()
        reader, writer = await _connect(gateway)
        try:
            writer.write(b"y" * 9000 + b"\n")
            writer.write((json.dumps({
                "op": "analyze", "text": NREV,
                "entries": ["nrev(glist, var)"], "id": 1,
            }) + "\n").encode("utf-8"))
            await writer.drain()
            oversized = json.loads(await reader.readline())
            assert oversized["shed"] is True
            assert oversized["reason"] == "oversized"
            assert oversized["retriable"] is False
            survivor = json.loads(await reader.readline())
            assert survivor["id"] == 1 and survivor["ok"]
            snapshot = gateway.metrics.snapshot()
            assert snapshot["serve.input.oversized"]["value"] == 1
        finally:
            writer.close()
            await gateway.stop()

    asyncio.run(scenario())


def test_malformed_lines_get_structured_errors_and_are_counted():
    async def scenario():
        gateway = Gateway(
            GatewayConfig(shards=1, workers=0), ServiceConfig()
        )
        await gateway.start()
        reader, writer = await _connect(gateway)
        try:
            writer.write(b"this is not json\n[1, 2]\n")
            await writer.drain()
            bad_json = json.loads(await reader.readline())
            assert bad_json["ok"] is False and "bad JSON" in bad_json["error"]
            non_object = json.loads(await reader.readline())
            assert non_object["ok"] is False
            snapshot = gateway.metrics.snapshot()
            assert snapshot["serve.input.malformed"]["value"] == 2
        finally:
            writer.close()
            await gateway.stop()

    asyncio.run(scenario())


def test_connection_drop_mid_line_leaves_gateway_serving():
    async def scenario():
        gateway = Gateway(
            GatewayConfig(shards=1, workers=0), ServiceConfig()
        )
        await gateway.start()
        torn_reader, torn_writer = await _connect(gateway)
        torn_writer.write(b'{"op": "analyze", "text": "never finis')
        await torn_writer.drain()
        torn_writer.transport.abort()
        reader, writer = await _connect(gateway)
        try:
            response = await _ask(reader, writer, {
                "op": "analyze", "text": NREV,
                "entries": ["nrev(glist, var)"],
            })
            assert response["ok"]
            assert response["result"] == _scratch(NREV, "nrev(glist, var)")
        finally:
            writer.close()
            await gateway.stop()

    asyncio.run(scenario())


# ----------------------------------------------------------------------
# Fan-out ops and shutdown.


def test_stats_and_metrics_fan_out_across_shards():
    async def scenario():
        gateway = Gateway(
            GatewayConfig(shards=2, workers=0), ServiceConfig()
        )
        await gateway.start()
        reader, writer = await _connect(gateway)
        try:
            for text, entry in PROGRAMS:
                await _ask(reader, writer, {
                    "op": "analyze", "text": text, "entries": [entry],
                })
            stats = await _ask(reader, writer, {"op": "stats"})
            assert stats["ok"]
            assert len(stats["stats"]["shards"]) == 2
            assert stats["stats"]["gateway"]["shards"] == 2
            metrics = await _ask(reader, writer, {"op": "metrics"})
            assert metrics["ok"]
            names = set(metrics["metrics"])
            assert "gateway.requests{op=analyze}" in names
            # Shard-side counters merged into the same snapshot.
            assert any(name.startswith("serve.") for name in names)
        finally:
            writer.close()
            await gateway.stop()

    asyncio.run(scenario())


def test_shutdown_answers_then_drains():
    async def scenario():
        gateway = Gateway(
            GatewayConfig(shards=2, workers=0), ServiceConfig()
        )
        host, port = await gateway.start()
        reader, writer = await _connect(gateway)
        response = await _ask(reader, writer, {"op": "shutdown"})
        assert response["ok"] and response["shutdown"] is True
        await asyncio.wait_for(gateway.serve_until_stopped(), 30.0)
        writer.close()
        with pytest.raises((ConnectionError, OSError)):
            second = await asyncio.open_connection(host, port)
            second[1].close()

    asyncio.run(scenario())


def test_stop_with_drain_serves_already_admitted_requests():
    async def scenario():
        backends = {}

        def factory(shard_id):
            backends[shard_id] = _BlockingBackend()
            return backends[shard_id]

        gateway = Gateway(
            GatewayConfig(shards=1, workers=0, queue_depth=8),
            backend_factory=factory,
        )
        await gateway.start()
        reader, writer = await _connect(gateway)
        for index in range(3):
            writer.write((json.dumps({
                "op": "analyze", "text": "a(x).", "id": index,
            }) + "\n").encode("utf-8"))
        await writer.drain()
        await asyncio.sleep(0.2)
        backends[0].release.set()
        await gateway.stop(drain=True)
        answers = [json.loads(await reader.readline()) for _ in range(3)]
        assert all(answer.get("echo") for answer in answers)
        writer.close()

    asyncio.run(scenario())


# ----------------------------------------------------------------------
# The shard in isolation: saturation and drain-free close.


def test_shard_submit_raises_when_saturated():
    backend = _BlockingBackend()
    shard = Shard(0, lambda shard_id: backend,
                  config=ShardConfig(queue_depth=1))
    try:
        loop = asyncio.new_event_loop()
        try:
            # No loop running: futures are never resolved, which is
            # fine — only admission behaviour is under test.
            shard.submit({"op": "analyze"}, loop.create_future(), loop)
            time.sleep(0.2)  # let the dispatch thread pick up the first
            shard.submit({"op": "analyze"}, loop.create_future(), loop)
            with pytest.raises(ShardSaturated):
                shard.submit(
                    {"op": "analyze"}, loop.create_future(), loop
                )
        finally:
            loop.close()
    finally:
        backend.release.set()
        shard.close()


def test_shard_close_without_drain_sheds_queue():
    backend = _BlockingBackend()
    shard = Shard(0, lambda shard_id: backend,
                  config=ShardConfig(queue_depth=8))
    loop = asyncio.new_event_loop()
    try:
        shard.submit({"op": "analyze"}, loop.create_future(), loop)
        deadline = time.monotonic() + 10.0
        while not backend.payloads and time.monotonic() < deadline:
            time.sleep(0.01)  # dispatch thread now blocked in handle()
        for _ in range(3):
            shard.submit({"op": "analyze"}, loop.create_future(), loop)
        # close() flags shed-on-close *before* the backend is released,
        # so the three queued requests must be shed, not served.
        closer = threading.Thread(target=shard.close, args=(False,))
        closer.start()
        time.sleep(0.2)
        backend.release.set()
        closer.join(timeout=30.0)
        assert not closer.is_alive()
        assert shard.stats()["shed_closing"] == 3
    finally:
        loop.close()
