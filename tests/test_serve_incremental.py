"""Property test: incremental re-analysis ≡ from-scratch analysis.

A corpus program is subjected to random single-clause edits (duplicate,
delete, swap — drawn from the shared :mod:`repro.fuzz.mutate` engine,
the one source of seeded randomness for every random-edit surface in
the repo).  After every edit the service — seeding from whatever its
store accumulated over the previous edits — must produce per-predicate
lattice facts equal to a from-scratch ``analyze()`` of the edited text
(``stable_dict`` compares exactly the facts: modes, call/success
types, aliasing, can-succeed, statuses).

The budget variant: when the per-request budget trips mid-edit, the
response is degraded, *nothing* enters the store, and the next
healthy request still equals the from-scratch result.
"""

import random

import pytest

from repro.analysis.driver import Analyzer
from repro.bench.programs import BY_NAME
from repro.fuzz.mutate import Mutator, render_program
from repro.prolog.program import Program
from repro.serve import AnalysisService, ServiceConfig

NREV = """
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).
append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).
main :- nrev([1,2,3], R).
"""

CORPUS = [
    ("nrev", NREV, "nrev(glist, var)"),
    ("nreverse", BY_NAME["nreverse"].source, BY_NAME["nreverse"].entry),
    ("qsort", BY_NAME["qsort"].source, BY_NAME["qsort"].entry),
    ("tak", BY_NAME["tak"].source, BY_NAME["tak"].entry),
    ("log10", BY_NAME["log10"].source, BY_NAME["log10"].entry),
    ("serialise", BY_NAME["serialise"].source, BY_NAME["serialise"].entry),
]

#: Single-clause edits: the same operator subset the original ad-hoc
#: editor applied, now served by the shared mutation engine.
EDIT_OPS = ("duplicate_clause", "delete_clause", "swap_clauses")


def _render(program: Program) -> str:
    return render_program(program)


def _random_edit(text: str, rng: random.Random) -> str:
    """One random single-clause edit, re-rendered to text."""
    edited, applied = Mutator(rng, ops=EDIT_OPS).mutate_text(text)
    assert applied, "corpus programs always offer an edit site"
    return edited


def _scratch(text, entry):
    return Analyzer(Program.from_text(text)).analyze([entry]).stable_dict()


def test_render_round_trips():
    for name, source, entry in CORPUS:
        rendered = _render(Program.from_text(source))
        assert _scratch(rendered, entry) == _scratch(source, entry), name


@pytest.mark.parametrize("name,source,entry", CORPUS)
def test_incremental_equals_scratch_under_random_edits(name, source, entry):
    rng = random.Random(f"serve-{name}")
    service = AnalysisService(ServiceConfig())
    text = _render(Program.from_text(source))
    edits = 4
    for step in range(edits + 1):
        response = service.handle(
            {"op": "analyze", "text": text, "entries": [entry]}
        )
        assert response["ok"], response.get("error")
        assert response["status"] == "exact"
        assert response["result"] == _scratch(text, entry), (
            f"{name} step {step}: served facts differ from from-scratch"
        )
        if step < edits:
            text = _random_edit(text, rng)
    # across the edit sequence the cache did real work at least once
    stats = service.store.stats()
    assert stats["hits"] + stats["misses"] > 0


def test_same_text_after_edits_is_a_full_hit():
    service = AnalysisService(ServiceConfig())
    rng = random.Random("back-and-forth")
    entry = "nrev(glist, var)"
    base = _render(Program.from_text(NREV))
    service.handle({"op": "analyze", "text": base, "entries": [entry]})
    edited = _random_edit(base, rng)
    service.handle({"op": "analyze", "text": edited, "entries": [entry]})
    # reverting to the original text: content addressing makes it a hit
    back = service.handle({"op": "analyze", "text": base, "entries": [entry]})
    assert back["cache"]["outcome"] == "hit"
    assert back["result"] == _scratch(base, entry)


@pytest.mark.parametrize("max_iterations", [1, 2, 3])
def test_tripped_budget_never_contaminates_the_store(max_iterations):
    rng = random.Random(f"budget-{max_iterations}")
    service = AnalysisService(ServiceConfig())
    entry = "nrev(glist, var)"
    text = _render(Program.from_text(NREV))
    service.handle({"op": "analyze", "text": text, "entries": [entry]})
    edited = _random_edit(text, rng)

    def result_keys():
        # Results and SCC summaries; the checkpoint namespace is
        # excluded — a degraded run deliberately persists its
        # pre-widening snapshot there (see docs/robustness.md).
        return {
            key for key in service.store._data
            if not key.startswith("checkpoint:")
        }

    before = result_keys()
    degraded = service.handle({
        "op": "analyze", "text": edited, "entries": [entry],
        "budget": {"max_iterations": max_iterations},
    })
    assert degraded["ok"]
    if degraded["status"] == "exact":
        # seeding made even this tiny budget sufficient — fine, but then
        # the result must be the true one
        assert degraded["result"] == _scratch(edited, entry)
    else:
        # degraded: no result/summary entry was stored by this request
        assert result_keys() == before
        assert service.store.stats()["rejected_degraded"] == 0
    # a healthy request afterwards is exact and equal to from-scratch,
    # never seeded with degraded garbage
    healthy = service.handle(
        {"op": "analyze", "text": edited, "entries": [entry]}
    )
    assert healthy["status"] == "exact"
    assert healthy["result"] == _scratch(edited, entry)
