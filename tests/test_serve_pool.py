"""Crash isolation (repro.serve.pool + repro.serve.supervisor).

The contract under test: a worker death — SIGKILL mid-request, injected
chaos, timeout — costs at most one structured error response, never the
service; results that do come back equal a from-scratch ``analyze()``.
"""

import json
import os
import signal
import time

import pytest

from repro.analysis.driver import Analyzer
from repro.prolog.program import Program
from repro.robust import Budget, FaultPlan
from repro.serve import (
    HIT,
    ServiceConfig,
    Supervisor,
    SupervisorConfig,
    run_batch,
    serve_loop,
)
from repro.serve.worker import config_from_wire, config_to_wire

NREV = """
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).
append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).
"""

ENTRY = "nrev(glist, var)"

REQUEST = {"op": "analyze", "text": NREV, "entries": [ENTRY]}


def _scratch(text=NREV, entries=(ENTRY,)):
    return Analyzer(Program.from_text(text)).analyze(list(entries)).stable_dict()


def _supervisor(fault_plan=None, service_config=None, **kwargs):
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("max_retries", 2)
    kwargs.setdefault("backoff_base", 0.01)
    kwargs.setdefault("grace", 0.2)
    return Supervisor(
        service_config if service_config is not None else ServiceConfig(),
        SupervisorConfig(**kwargs),
        fault_plan=fault_plan,
    )


# ----------------------------------------------------------------------
# Config wire format.


def test_config_round_trips_through_wire():
    config = ServiceConfig(
        depth=3, subsumption=True, on_undefined="top", library=True,
        store_dir="/tmp/x", journal=True,
        budget=Budget(max_steps=100, deadline=1.5),
    )
    back = config_from_wire(json.loads(json.dumps(config_to_wire(config))))
    assert back.depth == 3 and back.subsumption and back.library
    assert back.on_undefined == "top"
    assert back.store_dir == "/tmp/x" and back.journal
    assert back.budget.max_steps == 100
    assert back.budget.deadline == 1.5
    plain = config_from_wire(config_to_wire(ServiceConfig()))
    assert plain.budget is None


# ----------------------------------------------------------------------
# The happy path through a worker.


def test_worker_answers_like_in_process():
    with _supervisor() as supervisor:
        cold = supervisor.handle(dict(REQUEST))
        warm = supervisor.handle(dict(REQUEST))
    assert cold["ok"] and cold["result"] == _scratch()
    assert warm["ok"] and warm["cache"]["outcome"] == HIT
    assert cold["status"] == "exact"


def test_request_errors_still_structured_through_worker():
    with _supervisor() as supervisor:
        response = supervisor.handle({"op": "analyze", "text": "p("})
    assert response["ok"] is False and "error" in response


def test_config_knobs_reach_the_worker():
    config = ServiceConfig(budget=Budget(max_iterations=1))
    with _supervisor(service_config=config) as supervisor:
        response = supervisor.handle(dict(REQUEST))
    assert response["ok"] and response["status"] == "degraded"


# ----------------------------------------------------------------------
# Crash isolation: SIGKILL mid-request.


def test_injected_kill_is_retried_transparently():
    plan = FaultPlan(kill_worker_at_request=1)
    with _supervisor(fault_plan=plan) as supervisor:
        response = supervisor.handle(dict(REQUEST))
        after = supervisor.handle(dict(REQUEST))
        stats = supervisor.stats()
    assert response["ok"] and response["result"] == _scratch()
    assert response["attempts"] == 2
    assert after["ok"]  # the next request on the same service succeeds
    assert stats["crashes_survived"] == 1 and stats["retries"] == 1
    assert stats["pool"]["spawned"] == 2  # a fresh worker replaced the corpse


def test_kill_beyond_retries_is_structured_retriable_error():
    # With max_retries=0 the one crash is final: the response is the
    # structured retriable error, not an exception — and the service
    # keeps serving.
    plan = FaultPlan(kill_worker_at_request=1)
    with _supervisor(fault_plan=plan, max_retries=0) as supervisor:
        response = supervisor.handle({**REQUEST, "id": 9})
        after = supervisor.handle(dict(REQUEST))
    assert response["ok"] is False
    assert response["error_kind"] == "worker-crash"
    assert response["retriable"] is True
    assert response["attempts"] == 1
    assert response["id"] == 9
    assert after["ok"] and after["result"] == _scratch()


def test_external_sigkill_between_requests_is_survived():
    with _supervisor() as supervisor:
        first = supervisor.handle(dict(REQUEST))
        assert first["ok"]
        [(_, worker)] = supervisor.pool.workers()
        os.kill(worker.pid, signal.SIGKILL)
        worker.process.wait(timeout=10)
        second = supervisor.handle(dict(REQUEST))
    assert second["ok"] and second["result"] == _scratch()


def test_worker_python_exception_does_not_cost_the_worker():
    """A catchable failure is answered in-process: same worker, no
    respawn."""
    with _supervisor() as supervisor:
        supervisor.handle(dict(REQUEST))
        spawned = supervisor.pool.stats()["spawned"]
        bad = supervisor.handle({"op": "nope"})
        again = supervisor.handle(dict(REQUEST))
        assert supervisor.pool.stats()["spawned"] == spawned
    assert bad["ok"] is False and again["ok"] is True


# ----------------------------------------------------------------------
# The wall-clock kill.


def test_delayed_response_is_killed_nonretriable():
    plan = FaultPlan(delay_response_at_request=1, delay_seconds=5.0)
    with _supervisor(
        fault_plan=plan, request_timeout=0.3, grace=0.2
    ) as supervisor:
        started = time.monotonic()
        response = supervisor.handle(dict(REQUEST))
        elapsed = time.monotonic() - started
        after = supervisor.handle(dict(REQUEST))
        stats = supervisor.stats()
    assert response["ok"] is False
    assert response["error_kind"] == "timeout"
    assert response["retriable"] is False
    assert elapsed < 4.0  # killed at deadline + grace, not after the sleep
    assert stats["timeouts"] == 1 and stats["pool"]["kills"] == 1
    assert after["ok"]  # a fresh worker took over


def test_request_budget_deadline_arms_the_kill_timer():
    supervisor = _supervisor(grace=0.25)
    try:
        assert supervisor._timeout_for({}) is None
        assert supervisor._timeout_for(
            {"budget": {"deadline": 1.0}}
        ) == pytest.approx(1.25)
    finally:
        supervisor.close()


def test_tightest_deadline_wins():
    config = ServiceConfig(budget=Budget(deadline=5.0))
    supervisor = _supervisor(
        service_config=config, request_timeout=3.0, grace=0.5
    )
    try:
        assert supervisor._timeout_for({}) == pytest.approx(3.5)
        assert supervisor._timeout_for(
            {"budget": {"deadline": 0.5}}
        ) == pytest.approx(1.0)
    finally:
        supervisor.close()


# ----------------------------------------------------------------------
# Protocol plumbing: shutdown, stats, invalidate, serve_loop, batch.


def test_shutdown_closes_the_pool():
    supervisor = _supervisor()
    first = supervisor.handle(dict(REQUEST))
    workers = [worker for _, worker in supervisor.pool.workers()]
    response = supervisor.handle({"op": "shutdown", "id": 3})
    assert first["ok"] and response["shutdown"] and response["id"] == 3
    assert supervisor.pool.closed
    assert all(not worker.alive for worker in workers)


def test_stats_carry_supervisor_block():
    with _supervisor() as supervisor:
        supervisor.handle(dict(REQUEST))
        response = supervisor.handle({"op": "stats"})
    assert response["ok"]
    assert response["stats"]["requests_served"] >= 1  # the worker's view
    assert response["supervisor"]["pool"]["size"] == 1


def test_invalidate_broadcasts_to_workers():
    with _supervisor(workers=2) as supervisor:
        supervisor.handle(dict(REQUEST))
        supervisor.handle(dict(REQUEST))  # lands on the other worker
        response = supervisor.handle({"op": "invalidate"})
        cold = supervisor.handle(dict(REQUEST))
    assert response["ok"] and response.get("invalidated")
    assert cold["ok"] and cold["cache"]["outcome"] != HIT


def test_serve_loop_over_supervisor_survives_a_crash():
    plan = FaultPlan(kill_worker_at_request=2)
    supervisor = _supervisor(fault_plan=plan, max_retries=0)
    import io

    lines = [
        json.dumps({**REQUEST, "id": 1}),
        json.dumps({**REQUEST, "id": 2}),  # killed, retries exhausted
        json.dumps({**REQUEST, "id": 3}),
        json.dumps({"op": "shutdown"}),
    ]
    stdout = io.StringIO()
    status = serve_loop(
        supervisor, io.StringIO("\n".join(lines) + "\n"), stdout
    )
    responses = [json.loads(line) for line in stdout.getvalue().splitlines()]
    assert status == 0 and len(responses) == 4
    assert responses[0]["ok"] is True
    assert responses[1]["ok"] is False
    assert responses[1]["retriable"] is True
    assert responses[2]["ok"] is True  # the service survived the crash
    assert responses[3]["shutdown"] is True


def test_run_batch_through_supervisor(tmp_path):
    path = tmp_path / "nrev.pl"
    path.write_text(NREV)
    with _supervisor() as supervisor:
        summary = run_batch(supervisor, [str(path)], [ENTRY], passes=2)
    assert summary["passes"][0]["miss"] == 1
    assert summary["passes"][1]["hit"] == 1
    assert summary["store"]["pool"]["size"] == 1  # supervisor stats block


# ----------------------------------------------------------------------
# Satellite: the backoff discipline around crashes and slow successes.


def test_backoff_resets_after_healthy_request():
    from repro.serve import WorkerPool

    pool = WorkerPool(
        config_to_wire(ServiceConfig()), size=1,
        backoff_base=0.4, backoff_cap=0.4,
    )
    try:
        slot, _ = pool.checkout()
        pool.report_crash(slot)
        assert pool._strikes == [1]
        started = time.perf_counter()
        slot, worker = pool.checkout()  # the respawn pays the backoff
        assert time.perf_counter() - started >= 0.3
        response = worker.request(dict(REQUEST), 60.0)
        assert response["ok"]
        pool.report_success(slot)
        assert pool._strikes == [0]
        # A deliberate kill strikes nothing, and the healthy request
        # reset the crash strike — so the next respawn is immediate.
        pool.report_kill(slot)
        started = time.perf_counter()
        pool.checkout()
        assert time.perf_counter() - started < 0.3
    finally:
        pool.close()


def test_kill_timer_grace_waits_out_a_slow_success():
    # The response is injected to arrive 0.4s late — past the 0.2s
    # request timeout but inside its 0.6s grace window.  The kill
    # timer must NOT fire: a slow-but-successful response wins the
    # race and is served, with no timeout recorded and no kill.
    plan = FaultPlan(delay_response_at_request=[1], delay_seconds=0.4)
    supervisor = _supervisor(
        fault_plan=plan, request_timeout=0.2, grace=0.6
    )
    try:
        response = supervisor.handle(dict(REQUEST))
        assert response["ok"], response
        assert response["result"] == _scratch()
        assert supervisor.timeouts == 0
        assert supervisor.pool.kills == 0
    finally:
        supervisor.close()
