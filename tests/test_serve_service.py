"""The analysis service (repro.serve.service) and the SCC scheduler.

The contract under test everywhere: whatever the cache state, a served
result equals a from-scratch ``analyze()`` (compared via
``stable_dict``), and a full-result hit answers without running any
fixpoint at all.
"""

import io
import json

import pytest

from repro.analysis.driver import Analyzer, parse_entry_spec
from repro.errors import BudgetExceeded
from repro.prolog.program import Program
from repro.robust import Budget, FaultPlan
from repro.serve import (
    HIT,
    INCREMENTAL,
    MISS,
    AnalysisService,
    SCCScheduler,
    ServiceConfig,
    run_batch,
    serve_loop,
)

NREV = """
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).
append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).
"""

ENTRY = "nrev(glist, var)"


def _scratch(text, entries):
    return Analyzer(Program.from_text(text)).analyze(entries).stable_dict()


def _service(**kwargs):
    return AnalysisService(ServiceConfig(**kwargs))


# ----------------------------------------------------------------------
# The scheduler alone: equivalence with the monolithic driver.


def test_scheduler_matches_driver_without_seeds():
    analyzer = Analyzer(Program.from_text(NREV))
    result, stats = SCCScheduler(analyzer).analyze([parse_entry_spec(ENTRY)])
    assert result.stable_dict() == _scratch(NREV, [ENTRY])
    assert result.status == "exact"
    assert stats.sccs_stabilized >= 1


def test_scheduler_matches_driver_multiple_entries():
    text = NREV + "\nmain :- nrev([1,2], R).\n"
    entries = ["main", ENTRY, "append(glist, glist, var)"]
    analyzer = Analyzer(Program.from_text(text))
    specs = [parse_entry_spec(entry) for entry in entries]
    result, _ = SCCScheduler(analyzer).analyze(specs)
    assert result.stable_dict() == _scratch(text, entries)
    # reports come back in input order, not schedule order
    assert [str(r.spec) for r in result.entry_reports] == \
        [str(spec) for spec in specs]


def test_scheduler_budget_degrades_like_driver():
    analyzer = Analyzer(Program.from_text(NREV))
    result, _ = SCCScheduler(analyzer).analyze(
        [parse_entry_spec(ENTRY)], budget=Budget(max_iterations=1)
    )
    assert result.status == "degraded"
    # degraded is sound: ⊤ success patterns, not missing entries
    info = result.predicate(("nrev", 2))
    assert info is not None and info.status == "degraded"


def test_scheduler_budget_raise_mode():
    analyzer = Analyzer(Program.from_text(NREV))
    with pytest.raises(BudgetExceeded):
        SCCScheduler(analyzer).analyze(
            [parse_entry_spec(ENTRY)],
            budget=Budget(max_iterations=1),
            on_budget="raise",
        )


def test_scheduler_fault_injection_degrades():
    analyzer = Analyzer(Program.from_text(NREV))
    result, _ = SCCScheduler(analyzer).analyze(
        [parse_entry_spec(ENTRY)], fault_plan=FaultPlan(at_table_update=2)
    )
    assert result.status == "degraded"


def test_scheduler_wrong_seed_is_corrected():
    # Cache validity is a performance matter, never a soundness one:
    # even a *wrong* seed (nrev "fails" on glist) must be fixed by the
    # verification sweep.
    analyzer = Analyzer(Program.from_text(NREV))
    spec = parse_entry_spec(ENTRY)
    wrong = [(spec.indicator, spec.pattern, None, frozenset())]
    result, _ = SCCScheduler(analyzer).analyze([spec], seeds=wrong)
    assert result.stable_dict() == _scratch(NREV, [ENTRY])


# ----------------------------------------------------------------------
# The service: cache outcomes and equivalence.


def test_cold_warm_and_equivalence():
    service = _service()
    request = {"op": "analyze", "text": NREV, "entries": [ENTRY]}
    cold = service.handle(request)
    warm = service.handle(request)
    scratch = _scratch(NREV, [ENTRY])
    assert cold["ok"] and cold["cache"]["outcome"] == MISS
    assert warm["ok"] and warm["cache"]["outcome"] == HIT
    assert cold["result"] == scratch and warm["result"] == scratch
    # the full-result hit never ran a fixpoint
    assert "timing" not in warm


def test_incremental_edit_reuses_clean_sccs():
    service = _service()
    service.handle({"op": "analyze", "text": NREV, "entries": [ENTRY]})
    edited = NREV + "\nnrev([x], [x]).\n"
    response = service.handle(
        {"op": "analyze", "text": edited, "entries": [ENTRY]}
    )
    assert response["cache"]["outcome"] == INCREMENTAL
    assert response["cache"]["sccs_seeded"] >= 1
    assert response["result"] == _scratch(edited, [ENTRY])


def test_edit_outside_reachable_code_still_full_hits():
    service = _service()
    service.handle({"op": "analyze", "text": NREV, "entries": [ENTRY]})
    edited = NREV + "\nunrelated(x) :- unrelated(x).\n"
    response = service.handle(
        {"op": "analyze", "text": edited, "entries": [ENTRY]}
    )
    assert response["cache"]["outcome"] == HIT


def test_degraded_results_are_not_cached():
    service = _service()
    tight = {
        "op": "analyze", "text": NREV, "entries": [ENTRY],
        "budget": {"max_iterations": 1},
    }
    degraded = service.handle(tight)
    assert degraded["status"] == "degraded"
    # No *result* or SCC summary is cached — only a checkpoint snapshot
    # (a different namespace: pre-widening fixpoint progress, kept so
    # the healthy follow-up resumes instead of re-deriving).
    assert not [
        key for key in service.store._data if not key.startswith("checkpoint:")
    ]
    assert [
        key for key in service.store._data if key.startswith("checkpoint:")
    ]
    # a healthy request afterwards recomputes and gets the exact result
    healthy = service.handle({"op": "analyze", "text": NREV, "entries": [ENTRY]})
    assert healthy["status"] == "exact"
    assert healthy["cache"]["outcome"] == MISS
    assert healthy["result"] == _scratch(NREV, [ENTRY])
    # ...and the checkpoint was garbage-collected on exact completion.
    assert not [
        key for key in service.store._data if key.startswith("checkpoint:")
    ]


def test_per_request_budget_tightens_server_budget():
    service = _service(budget=Budget(max_iterations=2))
    effective = service._budget_for({"budget": {"max_iterations": 50}})
    assert effective.max_iterations == 2  # server cap wins
    effective = service._budget_for({"budget": {"max_iterations": 1}})
    assert effective.max_iterations == 1  # request may ask for less
    # fresh object per request: counters independent
    assert effective is not service.config.budget
    assert effective.iterations_used == 0


def test_budget_exhaustion_in_one_request_does_not_leak():
    # checkpoint_every=None isolates the budget-accounting contract;
    # with checkpointing on, the second request would legitimately
    # resume and finish (see test below).
    service = _service(budget=Budget(max_iterations=4), checkpoint_every=None)
    first = service.handle({"op": "analyze", "text": NREV, "entries": [ENTRY]})
    assert first["status"] == "degraded"  # 4 iterations is not enough cold
    again = service.handle({"op": "analyze", "text": NREV, "entries": [ENTRY]})
    # the second request gets its own allowance, not the leftovers
    assert again["status"] == "degraded"
    assert again["cache"]["outcome"] == MISS


def test_budget_trips_make_cumulative_progress_via_checkpoints():
    # With checkpointing on, each degraded attempt banks its fixpoint
    # progress: repeated identical requests under the same insufficient
    # per-request budget eventually complete exactly — and the exact
    # result equals a from-scratch run.
    service = _service(budget=Budget(max_iterations=4), checkpoint_every=1)
    request = {"op": "analyze", "text": NREV, "entries": [ENTRY]}
    statuses = []
    for _ in range(8):
        response = service.handle(dict(request))
        statuses.append(response["status"])
        if response["status"] == "exact":
            break
    assert statuses[0] == "degraded"
    assert statuses[-1] == "exact"
    assert response["result"] == _scratch(NREV, [ENTRY])
    snapshot = service.metrics.snapshot()
    assert snapshot["resume.attempts"]["value"] >= 1
    assert snapshot["checkpoint.gc"]["value"] >= 1


def test_config_change_misses():
    service = _service()
    service.handle({"op": "analyze", "text": NREV, "entries": [ENTRY]})
    other = _service(depth=3)
    other.store = service.store  # same store, different config
    response = other.handle({"op": "analyze", "text": NREV, "entries": [ENTRY]})
    assert response["cache"]["outcome"] == MISS


def test_lint_op_uses_cache_and_reports():
    service = _service(on_undefined="top")
    request = {"op": "lint", "text": NREV, "entries": [ENTRY]}
    first = service.handle(request)
    second = service.handle(request)
    assert first["ok"] and second["ok"]
    assert second["cache"]["outcome"] == HIT
    assert first["lint"] == second["lint"]


def test_error_requests_are_answered_not_raised():
    service = _service()
    assert service.handle({"op": "analyze"})["ok"] is False
    assert service.handle({"op": "analyze", "text": "p(a)."})["ok"] is False
    assert service.handle({"op": "nope"})["ok"] is False
    bad_syntax = service.handle(
        {"op": "analyze", "text": "p(", "entries": ["p"]}
    )
    assert bad_syntax["ok"] is False and "error" in bad_syntax


def test_disk_store_survives_service_restart(tmp_path):
    directory = str(tmp_path / "cache")
    first = _service(store_dir=directory)
    first.handle({"op": "analyze", "text": NREV, "entries": [ENTRY]})
    second = _service(store_dir=directory)
    response = second.handle(
        {"op": "analyze", "text": NREV, "entries": [ENTRY]}
    )
    assert response["cache"]["outcome"] == HIT


# ----------------------------------------------------------------------
# The request loop and batch mode.


def test_serve_loop_protocol():
    service = _service()
    stdin = io.StringIO("\n".join([
        json.dumps({"op": "analyze", "text": NREV, "entries": [ENTRY], "id": 7}),
        "",  # blank lines are skipped
        "this is not json",
        json.dumps([1, 2, 3]),
        json.dumps({"op": "stats"}),
        json.dumps({"op": "shutdown"}),
        json.dumps({"op": "analyze", "text": NREV, "entries": [ENTRY]}),
    ]) + "\n")
    stdout = io.StringIO()
    assert serve_loop(service, stdin, stdout) == 0
    responses = [json.loads(line) for line in stdout.getvalue().splitlines()]
    assert len(responses) == 5  # nothing after shutdown
    assert responses[0]["id"] == 7 and responses[0]["ok"]
    assert responses[1]["ok"] is False  # bad JSON
    assert responses[2]["ok"] is False  # non-object
    assert responses[3]["stats"]["requests_served"] >= 1
    assert responses[4]["shutdown"] is True


def test_serve_loop_oversized_line_is_answered_and_survived():
    service = _service()
    good = json.dumps({"op": "analyze", "text": NREV, "entries": [ENTRY]})
    stdin = io.StringIO(
        '{"op": "analyze", "text": "' + "x" * 4096 + '"}\n'
        + good + "\n"
        + json.dumps({"op": "shutdown"}) + "\n"
    )
    stdout = io.StringIO()
    assert serve_loop(service, stdin, stdout, max_line_bytes=1024) == 0
    responses = [json.loads(line) for line in stdout.getvalue().splitlines()]
    assert len(responses) == 3
    assert responses[0]["ok"] is False
    assert "exceeds" in responses[0]["error"]
    assert responses[1]["ok"] is True  # the loop kept serving
    assert responses[1]["result"] == _scratch(NREV, [ENTRY])
    assert responses[2]["shutdown"] is True


def test_serve_loop_oversized_line_never_buffered_whole():
    """The oversized line is drained in bounded chunks, not held."""
    class CountingIO(io.StringIO):
        def __init__(self, text, cap):
            super().__init__(text)
            self.cap = cap

        def readline(self, size=-1):
            assert 0 < size <= self.cap + 1
            return super().readline(size)

    cap = 64
    stdin = CountingIO('{"pad": "' + "y" * 1000 + '"}\n', cap)
    stdout = io.StringIO()
    assert serve_loop(_service(), stdin, stdout, max_line_bytes=cap) == 0
    [response] = [json.loads(l) for l in stdout.getvalue().splitlines()]
    assert response["ok"] is False


def test_serve_loop_eof_mid_line_exits_cleanly():
    service = _service()
    # The stream ends without a trailing newline, mid-request.
    stdin = io.StringIO('{"op": "stats"')
    stdout = io.StringIO()
    assert serve_loop(service, stdin, stdout) == 0
    [response] = [json.loads(l) for l in stdout.getvalue().splitlines()]
    assert response["ok"] is False  # answered, not crashed


def test_run_batch_second_pass_hits(tmp_path):
    path = tmp_path / "nrev.pl"
    path.write_text(NREV)
    service = _service()
    summary = run_batch(service, [str(path)], [ENTRY], passes=2)
    assert summary["passes"][0][MISS] == 1
    assert summary["passes"][1][HIT] == 1
    assert summary["passes"][1]["error"] == 0


def test_serve_loop_counts_oversized_and_malformed_in_metrics():
    service = _service()
    stdin = io.StringIO(
        '{"op": "analyze", "text": "' + "x" * 4096 + '"}\n'
        + "this is not json\n"
        + json.dumps([1, 2, 3]) + "\n"
        + json.dumps({"op": "shutdown"}) + "\n"
    )
    stdout = io.StringIO()
    assert serve_loop(service, stdin, stdout, max_line_bytes=1024) == 0
    snapshot = service.metrics.snapshot()
    assert snapshot["serve.input.oversized"]["value"] == 1
    assert snapshot["serve.input.malformed"]["value"] == 2
