"""The result store (repro.serve.store): caps, LRU, disk, soundness gate."""

import json
import os
import stat

import pytest

from repro.analysis.driver import Analyzer
from repro.prolog.program import Program
from repro.serve.store import (
    DiskStore,
    ResultStore,
    entry_from_json,
    entry_to_json,
    pattern_from_json,
    pattern_to_json,
    table_to_json,
)

NREV = """
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).
append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).
"""


# ----------------------------------------------------------------------
# Pattern JSON round-trips.


def _final_table():
    return Analyzer(Program.from_text(NREV)).analyze(["nrev(glist, var)"]).table


def test_patterns_round_trip_through_json():
    table = _final_table()
    for indicator, entry in table.all_entries():
        data = json.loads(json.dumps(entry_to_json(indicator, entry)))
        back_ind, calling, success, may_share = entry_from_json(data)
        assert back_ind == indicator
        assert calling == entry.calling
        assert success == entry.success
        assert may_share == entry.may_share


def test_pattern_json_is_plain_data():
    table = _final_table()
    for _, entry in table.all_entries():
        text = json.dumps(pattern_to_json(entry.calling))
        assert pattern_from_json(json.loads(text)) == entry.calling


def test_table_to_json_is_sorted_and_filterable():
    table = _final_table()
    everything = table_to_json(table)
    keys = [(item["predicate"], json.dumps(item["calling"])) for item in everything]
    assert keys == sorted(keys)
    only_nrev = table_to_json(table, [("nrev", 2)])
    assert {item["predicate"] for item in only_nrev} == {"nrev/2"}


# ----------------------------------------------------------------------
# Caps and LRU.


def test_entry_cap_evicts_least_recently_used():
    store = ResultStore(max_entries=2, max_bytes=None)
    store.put("a", {"v": 1})
    store.put("b", {"v": 2})
    assert store.get("a") == {"v": 1}  # a is now most recent
    store.put("c", {"v": 3})           # evicts b
    assert store.get("b") is None
    assert store.get("a") == {"v": 1}
    assert store.get("c") == {"v": 3}
    assert store.evictions == 1


def test_byte_cap_evicts_and_refuses_oversize():
    small = {"v": "x"}
    size = len(json.dumps(small, sort_keys=True))
    store = ResultStore(max_entries=None, max_bytes=size * 2 + 1)
    store.put("a", small)
    store.put("b", small)
    assert len(store) == 2
    store.put("c", small)  # over byte cap → evict oldest
    assert store.get("a") is None and len(store) == 2
    # a value bigger than the whole cap is refused outright
    assert store.put("big", {"v": "y" * (size * 4)}) is False
    assert store.get("big") is None
    assert store.bytes_used <= store.max_bytes


def test_put_replaces_and_accounts_bytes():
    store = ResultStore(max_entries=8, max_bytes=None)
    store.put("k", {"v": "short"})
    first = store.bytes_used
    store.put("k", {"v": "a-much-longer-value-entirely"})
    assert len(store) == 1
    assert store.bytes_used > first
    store.invalidate("k")
    assert store.bytes_used == 0


def test_degraded_results_are_refused():
    store = ResultStore()
    assert store.put("k", {"v": 1}, status="degraded") is False
    assert store.put("k", {"v": 1}, status="failed") is False
    assert store.get("k") is None
    assert store.rejected_degraded == 2
    assert store.put("k", {"v": 1}, status="exact") is True


def test_stats_counts():
    store = ResultStore()
    store.get("missing")
    store.put("k", {"v": 1})
    store.get("k")
    stats = store.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1
    assert stats["entries"] == 1 and stats["bytes"] > 0


# ----------------------------------------------------------------------
# Disk layer.


def test_disk_round_trip_and_promotion(tmp_path):
    directory = str(tmp_path / "cache")
    first = ResultStore(disk=DiskStore(directory))
    first.put("scc:abc:def", {"entries": [1, 2, 3]})
    # a different process/instance sees the value via disk
    second = ResultStore(disk=DiskStore(directory))
    assert second.get("scc:abc:def") == {"entries": [1, 2, 3]}
    # ...and it was promoted into memory
    assert "scc:abc:def" in second._data


def test_disk_keys_are_sanitized(tmp_path):
    directory = str(tmp_path / "cache")
    disk = DiskStore(directory)
    disk.put("../../escape", json.dumps({"v": 1}))
    names = os.listdir(directory)
    assert names and all(os.sep not in name for name in names)
    assert disk.get("../../escape") == {"v": 1}


def test_corrupt_disk_file_is_a_miss(tmp_path):
    directory = str(tmp_path / "cache")
    disk = DiskStore(directory)
    disk.put("key", json.dumps({"v": 1}))
    [name] = os.listdir(directory)
    with open(os.path.join(directory, name), "w") as handle:
        handle.write("{not json")
    assert disk.get("key") is None
    store = ResultStore(disk=disk)
    assert store.get("key") is None


def test_unwritable_disk_does_not_crash(tmp_path):
    directory = str(tmp_path / "cache")
    disk = DiskStore(directory)
    os.chmod(directory, stat.S_IRUSR | stat.S_IXUSR)
    try:
        if os.access(directory, os.W_OK):  # running as root: skip
            pytest.skip("directory remains writable (euid 0)")
        disk.put("key", json.dumps({"v": 1}))  # must not raise
        assert disk.get("key") is None
    finally:
        os.chmod(directory, stat.S_IRWXU)


def test_invalidate_and_clear_cover_disk(tmp_path):
    directory = str(tmp_path / "cache")
    store = ResultStore(disk=DiskStore(directory))
    store.put("a", {"v": 1})
    store.put("b", {"v": 2})
    assert store.invalidate("a") is True
    assert ResultStore(disk=DiskStore(directory)).get("a") is None
    store.clear()
    assert os.listdir(directory) == []
    assert len(store) == 0


# ----------------------------------------------------------------------
# Self-healing: checksums, quarantine, the write-ahead journal.


def _entry_files(directory):
    return [
        name for name in os.listdir(directory)
        if name.endswith(".json")
    ]


def test_entry_files_carry_verified_checksums(tmp_path):
    directory = str(tmp_path / "cache")
    disk = DiskStore(directory)
    disk.put("key", json.dumps({"v": 1}, sort_keys=True))
    [name] = _entry_files(directory)
    with open(os.path.join(directory, name)) as handle:
        record = json.load(handle)
    assert set(record) == {"key", "sha256", "value"}
    assert record["value"] == {"v": 1}
    assert disk.get("key") == {"v": 1}


def test_bitflip_is_quarantined_not_served(tmp_path):
    directory = str(tmp_path / "cache")
    disk = DiskStore(directory)
    disk.put("key", json.dumps({"v": "payload"}, sort_keys=True))
    [name] = _entry_files(directory)
    path = os.path.join(directory, name)
    with open(path) as handle:
        text = handle.read()
    with open(path, "w") as handle:
        handle.write(text.replace("payload", "poisoned"))  # valid JSON!
    assert disk.get("key") is None  # checksum catches it
    assert disk.checksum_failures == 1
    assert disk.quarantined == 1
    assert not _entry_files(directory)  # moved, not left to re-read
    assert os.listdir(os.path.join(directory, "quarantine")) == [name]


def test_torn_file_is_quarantined_not_raised(tmp_path):
    # Satellite contract: unreadable/truncated entries are skipped and
    # quarantined, never propagated as json.JSONDecodeError.
    directory = str(tmp_path / "cache")
    disk = DiskStore(directory)
    disk.put("key", json.dumps({"v": 1}, sort_keys=True))
    [name] = _entry_files(directory)
    path = os.path.join(directory, name)
    with open(path) as handle:
        text = handle.read()
    with open(path, "w") as handle:
        handle.write(text[: len(text) // 2])
    store = ResultStore(disk=disk)
    assert store.get("key") is None
    assert disk.quarantined == 1


def test_legacy_unwrapped_files_still_readable(tmp_path):
    directory = str(tmp_path / "cache")
    disk = DiskStore(directory)
    with open(os.path.join(directory, "legacy.json"), "w") as handle:
        json.dump({"entries": [1, 2]}, handle)
    assert disk.get("legacy") == {"entries": [1, 2]}


def test_journal_replay_heals_torn_entry_write(tmp_path):
    directory = str(tmp_path / "cache")
    first = DiskStore(directory, journal=True)
    first.put("healthy", json.dumps({"v": 1}, sort_keys=True))
    first.put("torn", json.dumps({"v": 2}, sort_keys=True))
    first.close()
    # Tear the second entry's file behind the store's back.
    for name in _entry_files(directory):
        if "torn" in name:
            path = os.path.join(directory, name)
            with open(path) as handle:
                text = handle.read()
            with open(path, "w") as handle:
                handle.write(text[: len(text) // 3])
    second = DiskStore(directory, journal=True)
    assert second.journal_replayed == 1
    assert second.get("torn") == {"v": 2}
    assert second.get("healthy") == {"v": 1}
    # The journal was truncated after replay: records are in the files.
    assert os.path.getsize(os.path.join(directory, "journal.jsonl")) == 0


def test_injected_torn_write_heals_on_restart(tmp_path):
    from repro.robust import FaultPlan

    directory = str(tmp_path / "cache")
    disk = DiskStore(
        directory, journal=True, fault_plan=FaultPlan(corrupt_store_at_put=1)
    )
    disk.put("key", json.dumps({"v": 1}, sort_keys=True))
    assert disk.get("key") is None  # live read: quarantined miss
    assert disk.quarantined == 1
    disk.close()
    healed = DiskStore(directory, journal=True)
    assert healed.journal_replayed == 1
    assert healed.get("key") == {"v": 1}


def test_torn_journal_tail_is_discarded(tmp_path):
    directory = str(tmp_path / "cache")
    first = DiskStore(directory, journal=True)
    first.put("key", json.dumps({"v": 1}, sort_keys=True))
    first.close()
    journal = os.path.join(directory, "journal.jsonl")
    with open(journal, "a") as handle:
        handle.write('{"key": "half-a-reco')  # crash mid-append
    second = DiskStore(directory, journal=True)  # must not raise
    assert second.get("key") == {"v": 1}
    assert os.path.getsize(journal) == 0


def test_journal_rotates_at_cap(tmp_path):
    directory = str(tmp_path / "cache")
    disk = DiskStore(directory, journal=True)
    disk.JOURNAL_CAP = 512
    for index in range(32):
        disk.put(f"key-{index}", json.dumps(
            {"v": "x" * 64}, sort_keys=True
        ))
    assert os.path.getsize(
        os.path.join(directory, "journal.jsonl")
    ) < 512 + 4096  # cap + one record, not 32 records
    # Rotation lost no data: every entry file is intact.
    for index in range(32):
        assert disk.get(f"key-{index}") == {"v": "x" * 64}


def test_quarantine_names_do_not_collide(tmp_path):
    directory = str(tmp_path / "cache")
    disk = DiskStore(directory)
    for _ in range(3):
        disk.put("key", json.dumps({"v": 1}, sort_keys=True))
        [name] = _entry_files(directory)
        with open(os.path.join(directory, name), "w") as handle:
            handle.write("{torn")
        assert disk.get("key") is None
    assert disk.quarantined == 3
    assert len(os.listdir(os.path.join(directory, "quarantine"))) == 3


def test_result_store_stats_include_disk(tmp_path):
    store = ResultStore(disk=DiskStore(str(tmp_path / "cache"), journal=True))
    stats = store.stats()
    assert stats["disk"]["journal"] is True
    assert stats["disk"]["quarantined"] == 0


# ----------------------------------------------------------------------
# Satellite: operational visibility — quarantines and journal rotation
# are surfaced in the stats op and the metrics snapshot, not silent.


def test_journal_rotation_counted_in_stats_and_metrics(tmp_path):
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    directory = str(tmp_path / "cache")
    disk = DiskStore(directory, journal=True, metrics=registry)
    disk.JOURNAL_CAP = 512
    for index in range(32):
        disk.put(f"key-{index}", json.dumps(
            {"v": "x" * 64}, sort_keys=True
        ))
    assert disk.stats()["journal_rotations"] >= 1
    snapshot = registry.snapshot()
    assert snapshot["serve.store.journal.rotated"]["value"] >= 1
    assert (
        snapshot["serve.store.journal.rotated"]["value"]
        == disk.journal_rotations
    )


def test_stats_op_surfaces_quarantines_and_rotations(tmp_path):
    from repro.serve import AnalysisService, ServiceConfig

    directory = str(tmp_path / "cache")
    service = AnalysisService(
        ServiceConfig(store_dir=directory, journal=True)
    )
    text = "a(x).\n"
    assert service.handle({
        "op": "analyze", "text": text, "entries": ["a(g)"],
    })["ok"]
    # Corrupt every entry file; the next read quarantines it.
    for name in os.listdir(directory):
        if name.endswith(".json"):
            with open(os.path.join(directory, name), "w") as handle:
                handle.write("{torn")
    service.store._data.clear()  # force the disk-layer read
    service.store.bytes_used = 0
    assert service.handle({
        "op": "analyze", "text": text, "entries": ["a(g)"],
    })["ok"]
    response = service.handle({"op": "stats"})
    disk_stats = response["stats"]["store"]["disk"]
    assert disk_stats["quarantined"] >= 1
    assert "journal_rotations" in disk_stats
    metrics = response["stats"]["metrics"]
    assert metrics["serve.store.quarantined"]["value"] >= 1
