"""Tests for the SLD resolution solver: search, backtracking, cut."""

import pytest

from repro.errors import PrologError
from repro.prolog import Program, Solver, parse_term
from tests.conftest import solve_texts


class TestBasicResolution:
    def test_fact(self):
        assert solve_texts("p(a).", "p(a)") == [{}]

    def test_fact_fails(self):
        assert solve_texts("p(a).", "p(b)") == []

    def test_binding(self):
        assert solve_texts("p(a).", "p(X)") == [{"X": "a"}]

    def test_multiple_solutions_in_order(self):
        assert solve_texts("p(1). p(2). p(3).", "p(X)") == [
            {"X": "1"},
            {"X": "2"},
            {"X": "3"},
        ]

    def test_conjunction(self):
        solutions = solve_texts("p(1). p(2). q(2). q(3).", "(p(X), q(X))")
        assert solutions == [{"X": "2"}]

    def test_rule_chain(self):
        text = "a(X) :- b(X). b(X) :- c(X). c(7)."
        assert solve_texts(text, "a(X)") == [{"X": "7"}]

    def test_structural_unification(self):
        text = "p(f(X, g(X)))."
        assert solve_texts(text, "p(f(1, Y))") == [{"Y": "g(1)"}]

    def test_shared_variables(self):
        assert solve_texts("eq(X, X).", "eq(foo, Y)") == [{"Y": "foo"}]

    def test_unknown_predicate_raises(self):
        with pytest.raises(PrologError) as info:
            solve_texts("p.", "missing")
        assert info.value.kind == "existence_error"

    def test_unbound_goal_raises(self):
        with pytest.raises(PrologError):
            solve_texts("p.", "(X = Y, X)")


class TestBacktracking:
    def test_deep_backtracking(self):
        text = """
        pair(X, Y) :- n(X), n(Y).
        n(1). n(2). n(3).
        """
        solutions = solve_texts(text, "pair(A, B)")
        assert len(solutions) == 9
        assert solutions[0] == {"A": "1", "B": "1"}
        assert solutions[-1] == {"A": "3", "B": "3"}

    def test_bindings_undone(self):
        text = """
        p(X) :- q(X), r(X).
        q(1). q(2).
        r(2).
        """
        assert solve_texts(text, "p(X)") == [{"X": "2"}]

    def test_append_generates_splits(self, append_nrev):
        solutions = solve_texts(append_nrev, "app(X, Y, [1, 2, 3])")
        assert len(solutions) == 4

    def test_failure_driven_exhaustion(self):
        text = "p(1). p(2). all :- p(_), fail. all."
        assert solve_texts(text, "all") == [{}]


class TestCut:
    def test_cut_commits_clause(self):
        text = """
        max(X, Y, X) :- X >= Y, !.
        max(_, Y, Y).
        """
        assert solve_texts(text, "max(5, 3, M)") == [{"M": "5"}]
        assert solve_texts(text, "max(2, 3, M)") == [{"M": "3"}]

    def test_cut_prunes_alternatives_to_left(self):
        text = """
        p(X) :- q(X), !.
        q(1). q(2).
        """
        assert solve_texts(text, "p(X)") == [{"X": "1"}]

    def test_cut_local_to_predicate(self):
        text = """
        outer(X) :- inner(X).
        outer(99).
        inner(X) :- member_(X), !.
        member_(1). member_(2).
        """
        assert solve_texts(text, "outer(X)") == [{"X": "1"}, {"X": "99"}]

    def test_cut_then_fail(self):
        text = """
        p :- q, !, fail.
        p.
        q.
        """
        assert solve_texts(text, "p") == []

    def test_neck_cut_first_clause(self):
        text = """
        once_(X) :- !, X = 1.
        once_(2).
        """
        assert solve_texts(text, "once_(X)") == [{"X": "1"}]

    def test_cut_in_middle(self):
        text = """
        p(X, Y) :- q(X), !, r(Y).
        q(1). q(2).
        r(a). r(b).
        """
        solutions = solve_texts(text, "p(X, Y)")
        assert solutions == [{"X": "1", "Y": "a"}, {"X": "1", "Y": "b"}]

    def test_top_level_cut_is_true(self):
        assert solve_texts("p.", "(p, !)") == [{}]


class TestRecursion:
    def test_nrev(self, append_nrev):
        assert solve_texts(append_nrev, "nrev([1,2,3,4,5], R)") == [
            {"R": "[5, 4, 3, 2, 1]"}
        ]

    def test_peano(self):
        text = """
        plus(z, Y, Y).
        plus(s(X), Y, s(Z)) :- plus(X, Y, Z).
        """
        assert solve_texts(text, "plus(s(s(z)), s(z), R)") == [
            {"R": "s(s(s(z)))"}
        ]

    def test_step_limit(self):
        program = Program.from_text("loop :- loop.")
        solver = Solver(program, max_steps=1000)
        with pytest.raises(PrologError) as info:
            next(solver.solve(parse_term("loop")), None)
        assert info.value.kind == "resource_error"

    def test_depth_limit(self):
        # The resolution core is generator-recursive: without a depth
        # cap a deep right recursion overflows the C stack before the
        # step budget trips (the module raises the recursion limit).
        program = Program.from_text("loop :- loop.")
        solver = Solver(program, max_steps=10_000_000, max_depth=100)
        with pytest.raises(PrologError) as info:
            next(solver.solve(parse_term("loop")), None)
        assert info.value.kind == "resource_error"
        assert "depth" in str(info.value)

    def test_depth_limit_allows_shallow_success(self):
        program = Program.from_text(
            "plus(z, Y, Y).\n"
            "plus(s(X), Y, s(Z)) :- plus(X, Y, Z).\n"
        )
        solver = Solver(program, max_depth=100)
        goal = parse_term("plus(s(s(z)), s(z), R)")
        assert solver.solve_once(goal) is not None


class TestSolverApi:
    def test_solve_once(self):
        solver = Solver(Program.from_text("p(1). p(2)."))
        solution = solver.solve_once(parse_term("p(X)"))
        assert solution is not None

    def test_solve_once_failure(self):
        solver = Solver(Program.from_text("p(1)."))
        assert solver.solve_once(parse_term("p(9)")) is None

    def test_count_solutions(self):
        solver = Solver(Program.from_text("p(1). p(2). p(3)."))
        assert solver.count_solutions(parse_term("p(_)")) == 3

    def test_output_buffer(self):
        solver = Solver(Program.from_text("hello :- write(hi), nl."))
        solver.solve_once(parse_term("hello"))
        assert "".join(solver.output) == "hi\n"
