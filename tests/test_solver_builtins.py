"""Tests for the solver's builtin predicates."""

import pytest

from repro.errors import PrologError
from tests.conftest import solve_texts

EMPTY = "dummy."


def ok(goal):
    """Exactly one solution (unbound query variables may be reported)."""
    return len(solve_texts(EMPTY, goal)) == 1


def fails(goal):
    return solve_texts(EMPTY, goal) == []


class TestUnification:
    def test_unify(self):
        assert solve_texts(EMPTY, "X = f(1)") == [{"X": "f(1)"}]

    def test_unify_fails(self):
        assert fails("a = b")

    def test_not_unify(self):
        assert ok("a \\= b")
        assert fails("X \\= a")

    def test_not_unify_with_unbound_fails(self):
        # An unbound variable unifies with anything, so \= must fail.
        assert fails("X \\= f(Y)")

    def test_not_unify_undoes_probe_bindings(self):
        solutions = solve_texts(EMPTY, "(f(X) \\= g(1), X = a)")
        assert len(solutions) == 1
        assert solutions[0]["X"] == "a"


class TestStructuralComparison:
    def test_identical(self):
        assert ok("f(a) == f(a)")
        assert fails("f(X) == f(Y)")

    def test_not_identical(self):
        assert ok("f(X) \\== f(Y)")

    def test_order_var_before_number(self):
        assert ok("X @< 1")

    def test_order_number_before_atom(self):
        assert ok("99 @< a")

    def test_order_atom_before_struct(self):
        assert ok("zzz @< f(a)")

    def test_order_struct_by_arity_then_name(self):
        assert ok("f(a) @< f(a, b)")
        assert ok("f(a) @< g(a)")
        assert ok("f(a) @< f(b)")

    def test_compare(self):
        assert solve_texts(EMPTY, "compare(O, 1, 2)") == [{"O": "<"}]
        assert solve_texts(EMPTY, "compare(O, b, a)") == [{"O": ">"}]
        assert solve_texts(EMPTY, "compare(O, x, x)") == [{"O": "="}]


class TestTypeTests:
    def test_var_nonvar(self):
        assert ok("var(X)")
        assert fails("var(a)")
        assert ok("nonvar(a)")
        assert fails("nonvar(X)")

    def test_atom(self):
        assert ok("atom(foo)")
        assert ok("atom([])")
        assert fails("atom(1)")
        assert fails("atom(f(a))")

    def test_number_integer_float(self):
        assert ok("number(1)")
        assert ok("number(1.5)")
        assert ok("integer(1)")
        assert fails("integer(1.5)")
        assert ok("float(1.5)")
        assert fails("float(1)")

    def test_atomic_compound_callable(self):
        assert ok("atomic(a)")
        assert ok("atomic(1)")
        assert fails("atomic(f(a))")
        assert ok("compound(f(a))")
        assert ok("compound([1])")
        assert fails("compound(a)")
        assert ok("callable(a)")
        assert ok("callable(f(a))")
        assert fails("callable(1)")


class TestArithmeticBuiltins:
    def test_is(self):
        assert solve_texts(EMPTY, "X is 6 * 7") == [{"X": "42"}]

    def test_is_check(self):
        assert ok("4 is 2 + 2")
        assert fails("5 is 2 + 2")

    def test_comparisons(self):
        assert ok("1 < 2")
        assert ok("2 =< 2")
        assert ok("3 > 2")
        assert ok("3 >= 3")
        assert ok("2 =:= 2.0")
        assert ok("1 =\\= 2")

    def test_unbound_arith_raises(self):
        with pytest.raises(PrologError):
            solve_texts(EMPTY, "X < 1")


class TestTermInspection:
    def test_functor_decompose(self):
        assert solve_texts(EMPTY, "functor(f(a, b), N, A)") == [
            {"N": "f", "A": "2"}
        ]

    def test_functor_atom(self):
        assert solve_texts(EMPTY, "functor(foo, N, A)") == [{"N": "foo", "A": "0"}]

    def test_functor_construct(self):
        solutions = solve_texts(EMPTY, "functor(T, f, 2)")
        assert solutions[0]["T"].startswith("f(")

    def test_arg(self):
        assert solve_texts(EMPTY, "arg(2, f(a, b, c), X)") == [{"X": "b"}]
        assert fails("arg(4, f(a), X)")

    def test_univ_decompose(self):
        assert solve_texts(EMPTY, "f(a, b) =.. L") == [{"L": "[f, a, b]"}]

    def test_univ_construct(self):
        assert solve_texts(EMPTY, "T =.. [g, 1]") == [{"T": "g(1)"}]

    def test_univ_atom(self):
        assert solve_texts(EMPTY, "T =.. [foo]") == [{"T": "foo"}]

    def test_copy_term_shares_internally(self):
        solutions = solve_texts(EMPTY, "(copy_term(f(X, X), C), C = f(1, Z))")
        assert solutions[0]["Z"] == "1"

    def test_copy_term_does_not_share_with_original(self):
        solutions = solve_texts(EMPTY, "(copy_term(f(Y), C), Y = 1)")
        assert solutions[0]["C"] != "f(1)"


class TestCallAndBetween:
    def test_call(self):
        assert solve_texts("p(9).", "call(p(X))") == [{"X": "9"}]

    def test_call_with_extra_args(self):
        assert solve_texts("plus2(X, Y) :- Y is X + 2.", "call(plus2, 1, R)") == [
            {"R": "3"}
        ]

    def test_between_enumerates(self):
        solutions = solve_texts(EMPTY, "between(1, 4, X)")
        assert [s["X"] for s in solutions] == ["1", "2", "3", "4"]

    def test_between_checks(self):
        assert ok("between(1, 5, 3)")
        assert fails("between(1, 5, 9)")


class TestAtomBuiltins:
    def test_atom_length(self):
        assert solve_texts(EMPTY, "atom_length(hello, N)") == [{"N": "5"}]

    def test_name_atom_to_codes(self):
        solutions = solve_texts(EMPTY, "name(ab, L)")
        assert solutions == [{"L": "[97, 98]"}]

    def test_name_codes_to_atom(self):
        assert solve_texts(EMPTY, 'name(X, "hi")') == [{"X": "hi"}]

    def test_name_codes_to_number(self):
        assert solve_texts(EMPTY, 'name(X, "42")') == [{"X": "42"}]
