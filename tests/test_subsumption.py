"""Tests for subsumption-based extension-table reuse (OLDT refinement)."""

import pytest

from repro.analysis import Analyzer, analyze
from repro.analysis.machine import AbstractMachine
from repro.analysis.driver import parse_entry_spec
from repro.analysis.patterns import (
    Pattern,
    canonicalize,
    pattern_subsumes,
    pattern_to_trees,
)
from repro.bench import BENCHMARKS
from repro.domain import AbsSort, GROUND_T, INTEGER_T, tree_leq, tree_lub
from repro.prolog import Program
from repro.wam import compile_program

S = AbsSort


def pat(*nodes):
    return canonicalize(Pattern(tuple(nodes)))


class TestPatternSubsumes:
    def test_any_subsumes_atom(self):
        assert pattern_subsumes(pat(("i", S.ANY, 0)), pat(("i", S.ATOM, 0)))

    def test_atom_does_not_subsume_any(self):
        assert not pattern_subsumes(pat(("i", S.ATOM, 0)), pat(("i", S.ANY, 0)))

    def test_var_does_not_subsume_atom(self):
        assert not pattern_subsumes(pat(("i", S.VAR, 0)), pat(("i", S.ATOM, 0)))

    def test_glist_subsumes_intlist(self):
        assert pattern_subsumes(
            pat(("li", GROUND_T, 0)), pat(("li", INTEGER_T, 0))
        )

    def test_aliased_general_never_subsumes(self):
        # p(X, X) covers FEWER calls than p(X, Y): an aliased summary is
        # not sound for unaliased calls.
        shared = pat(("i", S.ANY, 0), ("i", S.ANY, 0))
        unshared = pat(("i", S.ANY, 0), ("i", S.ANY, 1))
        assert not pattern_subsumes(shared, unshared)
        assert not pattern_subsumes(shared, shared)

    def test_unshared_general_subsumes_shared_specific(self):
        shared = pat(("i", S.GROUND, 0), ("i", S.GROUND, 0))
        unshared = pat(("i", S.ANY, 0), ("i", S.ANY, 1))
        assert pattern_subsumes(unshared, shared)

    def test_arity_mismatch(self):
        assert not pattern_subsumes(pat(("i", S.ANY, 0)), pat())


class TestMachineReuse:
    PROGRAM = "main(X) :- p(X), p(a), p(1), p(f(g)). p(_)."

    def run(self, subsumption):
        compiled = compile_program(Program.from_text(self.PROGRAM))
        machine = AbstractMachine(compiled, subsumption=subsumption)
        spec = parse_entry_spec("main(any)")
        machine.run_pattern(spec.indicator, spec.pattern)
        return machine

    def test_reuses_general_entry(self):
        machine = self.run(True)
        assert machine.subsumption_hits == 3
        assert len(machine.table.entries_for(("p", 1))) == 1

    def test_off_by_default(self):
        machine = self.run(False)
        assert machine.subsumption_hits == 0
        assert len(machine.table.entries_for(("p", 1))) == 4

    def test_coarser_but_sound(self):
        exact = analyze(self.PROGRAM, "main(any)")
        subsumed = analyze(self.PROGRAM, "main(any)", subsumption=True)
        exact_tree = exact.success_types(("main", 1))[0]
        sub_tree = subsumed.success_types(("main", 1))[0]
        assert tree_leq(exact_tree, sub_tree)


def _per_pred(table):
    out = {}
    for indicator, entry in table.all_entries():
        if entry.success is None:
            continue
        trees = pattern_to_trees(entry.success)
        if indicator in out:
            out[indicator] = tuple(
                tree_lub(a, b) for a, b in zip(out[indicator], trees)
            )
        else:
            out[indicator] = trees
    return out


@pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
def test_subsumption_sound_on_benchmarks(bench):
    exact = _per_pred(Analyzer(bench.source).analyze([bench.entry]).table)
    subsumed = _per_pred(
        Analyzer(bench.source, subsumption=True).analyze([bench.entry]).table
    )
    for indicator, trees in exact.items():
        assert indicator in subsumed
        for fine, coarse in zip(trees, subsumed[indicator]):
            assert tree_leq(fine, coarse)


@pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
def test_subsumption_never_grows_table(bench):
    exact = Analyzer(bench.source).analyze([bench.entry])
    subsumed = Analyzer(bench.source, subsumption=True).analyze([bench.entry])
    assert len(subsumed.table) <= len(exact.table)
