"""Tests for the extension table."""

from repro.analysis.patterns import Pattern, canonicalize
from repro.analysis.table import ExtensionTable
from repro.domain import AbsSort, INTEGER_T

S = AbsSort


def pat(*sorts):
    return canonicalize(
        Pattern(tuple(("i", sort, index) for index, sort in enumerate(sorts)))
    )


class TestEntries:
    def test_entry_created_once(self):
        table = ExtensionTable()
        calling = pat(S.GROUND)
        first = table.entry(("p", 1), calling)
        second = table.entry(("p", 1), calling)
        assert first is second
        assert len(table) == 1

    def test_distinct_patterns_distinct_entries(self):
        table = ExtensionTable()
        table.entry(("p", 1), pat(S.GROUND))
        table.entry(("p", 1), pat(S.VAR))
        assert len(table) == 2

    def test_find_missing(self):
        table = ExtensionTable()
        assert table.find(("p", 1), pat(S.ANY)) is None

    def test_creation_counts_as_change(self):
        table = ExtensionTable()
        before = table.changes
        table.entry(("p", 1), pat(S.ANY))
        assert table.changes == before + 1


class TestUpdates:
    def test_first_update_sets_success(self):
        table = ExtensionTable()
        calling = pat(S.GROUND)
        assert table.update(("p", 1), calling, pat(S.ATOM))
        assert table.find(("p", 1), calling).success == pat(S.ATOM)

    def test_update_lubs(self):
        table = ExtensionTable()
        calling = pat(S.ANY)
        table.update(("p", 1), calling, pat(S.ATOM))
        assert table.update(("p", 1), calling, pat(S.INTEGER))
        assert table.find(("p", 1), calling).success == pat(S.CONST)

    def test_redundant_update_reports_unchanged(self):
        table = ExtensionTable()
        calling = pat(S.ANY)
        table.update(("p", 1), calling, pat(S.GROUND))
        changes = table.changes
        assert not table.update(("p", 1), calling, pat(S.ATOM))
        assert table.changes == changes

    def test_monotone_growth(self):
        table = ExtensionTable()
        calling = pat(S.ANY)
        for success in [pat(S.ATOM), pat(S.INTEGER), pat(S.GROUND), pat(S.NV)]:
            table.update(("p", 1), calling, success)
        assert table.find(("p", 1), calling).success == pat(S.NV)

    def test_may_share_accumulates(self):
        table = ExtensionTable()
        calling = pat(S.ANY, S.ANY)
        shared = canonicalize(Pattern((("i", S.NV, 0), ("i", S.NV, 0))))
        table.update(("p", 2), calling, shared)
        entry = table.find(("p", 2), calling)
        assert (0, 1) in entry.may_share
        unshared = pat(S.NV, S.NV)
        table.update(("p", 2), calling, unshared)
        # Once possible, sharing stays recorded.
        assert (0, 1) in table.find(("p", 2), calling).may_share

    def test_ground_sharing_is_vacuous(self):
        # A ground term cannot be instantiated through an alias, so
        # canonicalization erases ground-ground sharing and the table
        # never records it.
        table = ExtensionTable()
        calling = pat(S.ANY, S.ANY)
        shared = canonicalize(Pattern((("i", S.GROUND, 0), ("i", S.GROUND, 0))))
        assert shared == pat(S.GROUND, S.GROUND)
        table.update(("p", 2), calling, shared)
        assert not table.find(("p", 2), calling).may_share


class TestInspection:
    def test_predicates_and_entries(self):
        table = ExtensionTable()
        table.entry(("p", 1), pat(S.ANY))
        table.entry(("q", 0), canonicalize(Pattern(())))
        assert set(table.predicates()) == {("p", 1), ("q", 0)}
        assert len(table.entries_for(("p", 1))) == 1

    def test_to_text(self):
        table = ExtensionTable()
        table.update(("p", 1), pat(S.GROUND), pat(S.ATOM))
        text = table.to_text()
        assert "p/1" in text and "atom" in text

    def test_to_text_shows_fail(self):
        table = ExtensionTable()
        table.entry(("p", 1), pat(S.GROUND))
        assert "FAIL" in table.to_text()
