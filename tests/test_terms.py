"""Tests for the term model (repro.prolog.terms)."""

import pytest

from repro.prolog.terms import (
    NIL,
    Atom,
    Float,
    Int,
    Struct,
    Var,
    cons,
    format_indicator,
    indicator_of,
    is_cons,
    is_ground,
    is_proper_list,
    iter_subterms,
    list_elements,
    make_list,
    rename_term,
    term_depth,
    term_size,
    term_vars,
)


class TestAtoms:
    def test_equal_by_name(self):
        assert Atom("foo") == Atom("foo")

    def test_unequal_names(self):
        assert Atom("foo") != Atom("bar")

    def test_interned_identity(self):
        assert Atom("foo") is Atom("foo")

    def test_hashable(self):
        assert len({Atom("a"), Atom("a"), Atom("b")}) == 2

    def test_immutable(self):
        with pytest.raises(AttributeError):
            Atom("a").name = "b"

    def test_str(self):
        assert str(Atom("hello")) == "hello"

    def test_not_equal_to_int(self):
        assert Atom("1") != Int(1)


class TestNumbers:
    def test_int_equality(self):
        assert Int(3) == Int(3)
        assert Int(3) != Int(4)

    def test_float_equality(self):
        assert Float(1.5) == Float(1.5)

    def test_int_float_distinct(self):
        assert Int(1) != Float(1.0)

    def test_int_immutable(self):
        with pytest.raises(AttributeError):
            Int(1).value = 2

    def test_int_hash(self):
        assert len({Int(1), Int(1), Int(2)}) == 2


class TestVars:
    def test_identity_semantics(self):
        assert Var("X") != Var("X")

    def test_same_object_equal(self):
        variable = Var("X")
        assert variable == variable

    def test_anonymous_str(self):
        assert str(Var()).startswith("_G")

    def test_named_str(self):
        assert str(Var("Foo")) == "Foo"


class TestStructs:
    def test_requires_args(self):
        with pytest.raises(ValueError):
            Struct("f", ())

    def test_equality_structural(self):
        assert Struct("f", (Atom("a"),)) == Struct("f", (Atom("a"),))

    def test_arity(self):
        assert Struct("f", (Atom("a"), Atom("b"))).arity == 2

    def test_indicator(self):
        assert Struct("foo", (Int(1),)).indicator == ("foo", 1)

    def test_immutable(self):
        term = Struct("f", (Atom("a"),))
        with pytest.raises(AttributeError):
            term.name = "g"

    def test_str(self):
        assert str(Struct("f", (Atom("a"), Int(2)))) == "f(a, 2)"


class TestLists:
    def test_make_list_empty(self):
        assert make_list([]) == NIL

    def test_make_list_shape(self):
        term = make_list([Int(1), Int(2)])
        assert is_cons(term)
        elements, tail = list_elements(term)
        assert elements == [Int(1), Int(2)]
        assert tail == NIL

    def test_make_list_with_tail(self):
        tail = Var("T")
        term = make_list([Int(1)], tail)
        elements, end = list_elements(term)
        assert elements == [Int(1)]
        assert end is tail

    def test_cons(self):
        cell = cons(Atom("a"), NIL)
        assert cell.indicator == (".", 2)

    def test_is_proper_list(self):
        assert is_proper_list(make_list([Atom("a")]))
        assert is_proper_list(NIL)
        assert not is_proper_list(make_list([Atom("a")], Var("T")))
        assert not is_proper_list(Atom("a"))

    def test_is_cons_excludes_nil(self):
        assert not is_cons(NIL)


class TestIndicators:
    def test_atom_indicator(self):
        assert indicator_of(Atom("main")) == ("main", 0)

    def test_struct_indicator(self):
        assert indicator_of(Struct("p", (Var("X"),))) == ("p", 1)

    def test_non_callable_raises(self):
        with pytest.raises(TypeError):
            indicator_of(Int(1))

    def test_format(self):
        assert format_indicator(("foo", 3)) == "foo/3"


class TestTraversal:
    def test_term_vars_order_and_dedup(self):
        x, y = Var("X"), Var("Y")
        term = Struct("f", (x, Struct("g", (y, x))))
        assert term_vars(term) == [x, y]

    def test_term_vars_ignores_anonymous_name_sharing(self):
        a, b = Var("_"), Var("_")
        term = Struct("f", (a, b))
        assert len(term_vars(term)) == 2

    def test_rename_consistent(self):
        x = Var("X")
        term = Struct("f", (x, x))
        renamed = rename_term(term, {})
        assert isinstance(renamed, Struct)
        assert renamed.args[0] is renamed.args[1]
        assert renamed.args[0] is not x

    def test_rename_keeps_constants(self):
        term = Struct("f", (Atom("a"), Int(1)))
        assert rename_term(term, {}) == term

    def test_term_size(self):
        assert term_size(Atom("a")) == 1
        assert term_size(Struct("f", (Atom("a"), Int(1)))) == 3

    def test_term_depth(self):
        assert term_depth(Atom("a")) == 1
        nested = Struct("f", (Struct("g", (Atom("a"),)),))
        assert term_depth(nested) == 3

    def test_iter_subterms_preorder(self):
        term = Struct("f", (Atom("a"), Struct("g", (Int(1),))))
        kinds = [type(t).__name__ for t in iter_subterms(term)]
        assert kinds == ["Struct", "Atom", "Struct", "Int"]

    def test_is_ground(self):
        assert is_ground(make_list([Int(1), Atom("a")]))
        assert not is_ground(Struct("f", (Var("X"),)))
