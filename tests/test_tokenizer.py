"""Tests for the tokenizer."""

import pytest

from repro.errors import PrologSyntaxError
from repro.prolog.tokenizer import Token, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


class TestBasicTokens:
    def test_empty(self):
        assert kinds("") == ["eof"]

    def test_atom(self):
        tokens = tokenize("foo")
        assert tokens[0].kind == "atom"
        assert tokens[0].value == "foo"

    def test_variable(self):
        assert tokenize("Foo")[0].kind == "var"

    def test_underscore_variable(self):
        assert tokenize("_foo")[0].kind == "var"
        assert tokenize("_")[0].kind == "var"

    def test_integer(self):
        token = tokenize("42")[0]
        assert token.kind == "int"
        assert token.value == 42

    def test_float(self):
        token = tokenize("3.25")[0]
        assert token.kind == "float"
        assert token.value == 3.25

    def test_float_with_exponent(self):
        assert tokenize("2.0e3")[0].value == 2000.0

    def test_integer_then_end(self):
        assert kinds("42.") == ["int", "end", "eof"]

    def test_punct(self):
        assert values("( ) [ ] { } , |") == list("()[]{},|")

    def test_end_token(self):
        assert kinds("foo.") == ["atom", "end", "eof"]

    def test_dot_in_symbol(self):
        # =.. is one symbolic atom, not an end token.
        token = tokenize("=..")[0]
        assert token.kind == "atom"
        assert token.value == "=.."


class TestRadixAndChar:
    def test_hex(self):
        assert tokenize("0xff")[0].value == 255

    def test_octal(self):
        assert tokenize("0o17")[0].value == 15

    def test_binary(self):
        assert tokenize("0b101")[0].value == 5

    def test_char_code(self):
        assert tokenize("0'a")[0].value == ord("a")

    def test_char_code_escape(self):
        assert tokenize(r"0'\n")[0].value == ord("\n")

    def test_missing_radix_digits(self):
        with pytest.raises(PrologSyntaxError):
            tokenize("0x")


class TestQuoted:
    def test_quoted_atom(self):
        token = tokenize("'hello world'")[0]
        assert token.kind == "atom"
        assert token.value == "hello world"

    def test_quoted_atom_escape(self):
        assert tokenize(r"'a\nb'")[0].value == "a\nb"

    def test_doubled_quote(self):
        assert tokenize("'it''s'")[0].value == "it's"

    def test_string(self):
        token = tokenize('"abc"')[0]
        assert token.kind == "string"
        assert token.value == "abc"

    def test_unterminated_quote(self):
        with pytest.raises(PrologSyntaxError):
            tokenize("'abc")


class TestSymbolicAtoms:
    def test_operators_lump(self):
        assert tokenize(":-")[0].value == ":-"

    def test_arrow(self):
        assert tokenize("-->")[0].value == "-->"

    def test_solo_chars(self):
        assert values("! ;") == ["!", ";"]

    def test_comparison(self):
        assert tokenize("=<")[0].value == "=<"

    def test_symbol_split_by_space(self):
        assert values("= <") == ["=", "<"]


class TestCommentsAndLayout:
    def test_line_comment(self):
        assert kinds("foo % bar\nbaz.") == ["atom", "atom", "end", "eof"]

    def test_block_comment(self):
        assert kinds("foo /* bar */ baz") == ["atom", "atom", "eof"]

    def test_nested_like_block(self):
        assert kinds("/* a * b */ x") == ["atom", "eof"]

    def test_unterminated_block(self):
        with pytest.raises(PrologSyntaxError):
            tokenize("/* oops")

    def test_positions(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)


class TestFunctorFlag:
    def test_functor_true(self):
        assert tokenize("f(")[0].functor is True

    def test_functor_false_with_space(self):
        assert tokenize("f (")[0].functor is False

    def test_quoted_functor(self):
        assert tokenize("'f g'(x)")[0].functor is True
