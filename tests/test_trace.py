"""Tests for instruction-level tracing on both machines."""

from repro.analysis import AbstractMachine
from repro.analysis.driver import parse_entry_spec
from repro.prolog import Program, parse_term
from repro.wam import Machine, Tracer, compile_program


class TestConcreteTracing:
    def test_records_instructions(self):
        compiled = compile_program(Program.from_text("p(a)."))
        machine = Machine(compiled)
        machine.tracer = Tracer()
        machine.run_once(parse_term("p(X)"))
        text = machine.tracer.to_text()
        assert "get_constant a, A1" in text
        assert "proceed" in text

    def test_instruction_count_matches(self):
        compiled = compile_program(Program.from_text("p(a). p(b)."))
        machine = Machine(compiled)
        machine.tracer = Tracer()
        list(machine.run(parse_term("p(X)")))
        assert machine.tracer.instruction_count() == machine.instruction_count

    def test_limit_truncates(self):
        compiled = compile_program(
            Program.from_text("count(0). count(N) :- N > 0, M is N - 1, count(M).")
        )
        machine = Machine(compiled)
        machine.tracer = Tracer(limit=20)
        machine.run_once(parse_term("count(50)"))
        assert machine.tracer.truncated
        assert "truncated" in machine.tracer.to_text()

    def test_disabled_by_default(self):
        compiled = compile_program(Program.from_text("p."))
        machine = Machine(compiled)
        assert machine.tracer is None
        machine.run_once(parse_term("p"))


class TestAbstractTracing:
    def trace_of(self, program_text, entry):
        compiled = compile_program(Program.from_text(program_text))
        machine = AbstractMachine(compiled)
        machine.tracer = Tracer()
        spec = parse_entry_spec(entry)
        machine.run_pattern(spec.indicator, spec.pattern)
        return machine.tracer.to_text()

    def test_figure3_events(self):
        text = self.trace_of("p(a, [f(V)|L]).", "p(atom, glist)")
        assert "call p/2(atom, g-list)" in text
        assert "updateET p/2(atom, g-list) <- (atom, g-list)" in text
        assert "lookupET p/2(atom, g-list) -> (atom, g-list)" in text
        assert "fail to next clause" in text

    def test_memo_hit_event(self):
        text = self.trace_of("main :- q(1), q(2). q(_).", "main")
        assert "table hit" in text

    def test_failing_lookup(self):
        text = self.trace_of("p(a).", "p(int)")
        assert "lookupET p/1(int) -> FAIL" in text

    def test_reinterpreted_instructions_present(self):
        text = self.trace_of("p([H|T]).", "p(glist)")
        assert "get_list A1" in text
