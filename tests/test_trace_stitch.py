"""Cross-process trace stitching (repro.obs.trace + the serve layers).

The contract under test (docs/tracing.md): a tracer family sharing one
trace id produces records that :func:`stitch` merges into a single tree
with globally-qualified span ids; :func:`validate_stitched` enforces
per-process LIFO discipline plus resolvable, acyclic cross-process
parent edges; the serve layers thread the ``_trace`` context down to
the workers and ship completed worker spans back up as ``_spans``, so
one gateway request yields one stitched tree covering gateway, shard,
supervisor, and worker; a worker killed mid-request leaves an
explicitly aborted attempt span instead of a hole; and the viewer
renders any of it into one self-contained HTML file.
"""

import asyncio
import io
import json

import pytest

from repro.obs import render_html
from repro.obs.trace import (
    SPANS_WIRE_KEY,
    TRACE_CONTEXT_KEY,
    Tracer,
    new_trace_id,
    read_trace,
    stitch,
    trace_summary,
    validate_stitched,
)
from repro.serve.gateway import Gateway, GatewayConfig
from repro.serve.service import ServiceConfig
from repro.serve.supervisor import Supervisor, SupervisorConfig

APP = """
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
"""

APP_ENTRY = "app(glist, glist, var)"


def _records(buffer: io.StringIO):
    return [json.loads(line) for line in buffer.getvalue().splitlines()]


class TestContext:
    """The wire context and the record decorations it produces."""

    def test_current_context_names_the_innermost_span(self):
        tracer = Tracer(io.StringIO(), process="supervisor-0")
        tracer.begin("supervisor.execute")
        tracer.begin("worker.attempt")
        context = tracer.current_context()
        assert context["parent"] == "supervisor-0:2"
        assert context["trace"] == tracer.trace_id

    def test_process_none_tracer_has_no_context(self):
        tracer = Tracer(io.StringIO())
        tracer.begin("request")
        assert tracer.current_context() is None

    def test_child_tracer_roots_carry_the_parent_ref(self):
        parent = Tracer(io.StringIO(), process="supervisor-0")
        parent.begin("supervisor.execute")
        buffer = io.StringIO()
        child = Tracer(
            buffer, process="worker-1.1", context=parent.current_context()
        )
        child.begin("request")
        child.end()
        [begin, _] = _records(buffer)
        assert begin["parent_ref"] == "supervisor-0:1"
        assert begin["trace"] == parent.trace_id
        assert begin["process"] == "worker-1.1"
        assert "epoch" in begin

    def test_trace_id_is_shared_across_a_tracer_family(self):
        trace_id = new_trace_id()
        a = Tracer(io.StringIO(), process="gateway", trace_id=trace_id)
        b = Tracer(io.StringIO(), process="shard-0", trace_id=trace_id)
        assert a.trace_id == b.trace_id == trace_id

    def test_single_process_records_stay_undecorated(self):
        buffer = io.StringIO()
        tracer = Tracer(buffer)
        tracer.begin("a")
        tracer.end()
        [begin, end] = _records(buffer)
        assert "process" not in begin and "process" not in end
        assert "trace" not in begin and "epoch" not in begin


class TestStitch:
    """stitch() + validate_stitched() on hand-built record sets."""

    def _family(self):
        sink = io.StringIO()
        sup = Tracer(sink, process="supervisor-0")
        sup.begin("supervisor.execute")
        sup.begin("worker.attempt")
        worker_sink = io.StringIO()
        worker = Tracer(
            worker_sink, process="worker-9.1",
            context=sup.current_context(),
        )
        worker.begin("request")
        worker.event("fixpoint_iteration", pass_number=1)
        worker.end()
        sup.emit_foreign(_records(worker_sink))
        sup.end()
        sup.end()
        return _records(sink)

    def test_stitch_qualifies_ids_and_resolves_parent_refs(self):
        stitched = stitch(self._family())
        begun = validate_stitched(stitched)
        assert set(begun) == {
            "supervisor-0:1", "supervisor-0:2", "worker-9.1:1",
        }
        assert begun["worker-9.1:1"]["parent"] == "supervisor-0:2"
        assert begun["supervisor-0:1"]["parent"] is None

    def test_one_tree_summary(self):
        summary = trace_summary(self._family())
        assert summary["roots"] == ["supervisor-0:1"]
        assert summary["spans"] == 3
        assert summary["processes"] == ["supervisor-0", "worker-9.1"]
        assert len(summary["traces"]) == 1

    def test_validate_accepts_raw_records(self):
        # Auto-stitches int-span input before checking.
        assert validate_stitched(self._family())

    def test_dangling_parent_ref_is_rejected(self):
        records = self._family()
        for record in records:
            if record.get("parent_ref"):
                record["parent_ref"] = "supervisor-0:99"
        with pytest.raises(ValueError, match="does not exist"):
            validate_stitched(records)

    def test_per_process_lifo_violation_is_rejected(self):
        records = self._family()
        # End supervisor span 1 while span 2 is still open.
        ends = [
            record for record in records
            if record["kind"] == "end" and record["process"] == "supervisor-0"
        ]
        ends[0]["span"], ends[1]["span"] = ends[1]["span"], ends[0]["span"]
        with pytest.raises(ValueError, match="open stack"):
            validate_stitched(records)

    def test_span_id_reuse_is_rejected(self):
        records = self._family()
        duplicate = dict(next(
            record for record in records if record["kind"] == "begin"
        ))
        records.append(duplicate)
        with pytest.raises(ValueError, match="reused"):
            validate_stitched(records)

    def test_timestamps_rebase_onto_a_shared_origin(self):
        stitched = stitch(self._family())
        assert stitched == sorted(stitched, key=lambda r: r["ts"])
        assert all(record["ts"] >= 0 for record in stitched)

    def test_single_process_trace_stitches_as_main(self):
        buffer = io.StringIO()
        tracer = Tracer(buffer)
        tracer.begin("entry_spec")
        tracer.event("fixpoint_iteration", pass_number=1)
        tracer.end()
        stitched = stitch(_records(buffer))
        begun = validate_stitched(stitched)
        assert set(begun) == {"main:1"}


class TestSupervisorRoundTrip:
    """Real worker subprocesses shipping spans up the wire."""

    def test_two_worker_round_trip_stitches_into_trees(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        supervisor = Supervisor(
            ServiceConfig(),
            SupervisorConfig(workers=2),
            tracer=Tracer(path, process="supervisor-0"),
        )
        try:
            for salt in ("", "% v2\n"):
                response = supervisor.handle({
                    "op": "analyze", "text": APP + salt,
                    "entries": [APP_ENTRY],
                })
                assert response["ok"], response
                # The wire block never leaks to clients.
                assert SPANS_WIRE_KEY not in response
                assert TRACE_CONTEXT_KEY not in response
        finally:
            supervisor.close()
        records = read_trace(path)
        summary = trace_summary(records)  # implies validate_stitched
        assert "supervisor-0" in summary["processes"]
        workers = [
            process for process in summary["processes"]
            if process.startswith("worker-")
        ]
        assert workers, summary
        # One root per request, each a supervisor.execute span.
        begun = validate_stitched(stitch(records))
        for root in summary["roots"]:
            assert begun[root]["name"] == "supervisor.execute"
        # Every worker root span hangs under a supervisor worker.attempt
        # span; spans internal to the worker parent within the worker.
        for span, record in begun.items():
            if span.startswith("worker-") and record.get("parent"):
                parent = begun[record["parent"]]
                if parent_process := record["parent"].rsplit(":", 1)[0]:
                    if not parent_process.startswith("worker-"):
                        assert parent["name"] == "worker.attempt"
        assert summary["aborted"] == []

    def test_killed_worker_leaves_an_aborted_attempt_span(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        supervisor = Supervisor(
            ServiceConfig(),
            SupervisorConfig(workers=1, max_retries=2),
            tracer=Tracer(path, process="supervisor-0"),
        )
        try:
            response = supervisor.handle({
                "op": "analyze", "text": APP, "entries": [APP_ENTRY],
                "_chaos": {"kill": True},
            })
            assert response["ok"], response
        finally:
            supervisor.close()
        summary = trace_summary(read_trace(path))
        begun = validate_stitched(stitch(read_trace(path)))
        assert summary["aborted"], "killed attempt must leave a tombstone"
        for span in summary["aborted"]:
            assert begun[span]["name"] == "worker.attempt"

    def test_tracing_does_not_change_the_request_key(self):
        request = {"op": "analyze", "text": APP, "entries": [APP_ENTRY]}
        traced = dict(request)
        traced[TRACE_CONTEXT_KEY] = {"trace": "ab" * 8, "parent": "x:1"}
        assert (
            Supervisor._request_key(request)
            == Supervisor._request_key(traced)
        )


class TestGatewayEndToEnd:
    """One TCP request, one stitched tree across all four layers."""

    def test_request_yields_one_stitched_tree(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")

        async def scenario():
            gateway = Gateway(
                GatewayConfig(shards=2, workers=1),
                ServiceConfig(),
                trace_path=path,
            )
            await gateway.start()
            host, port = gateway.address
            reader, writer = await asyncio.open_connection(host, port)
            request = {
                "op": "analyze", "text": APP,
                "entries": [APP_ENTRY], "id": 1,
            }
            writer.write((json.dumps(request) + "\n").encode())
            await writer.drain()
            response = json.loads(await reader.readline())
            writer.close()
            await gateway.stop()
            return response

        response = asyncio.run(scenario())
        assert response["ok"], response
        assert SPANS_WIRE_KEY not in response
        assert TRACE_CONTEXT_KEY not in response
        records = read_trace(path)
        summary = trace_summary(records)
        # One request covers every layer under a single gateway root.
        assert len(summary["roots"]) == 1
        assert summary["roots"][0].startswith("gateway:")
        kinds = {process.split("-")[0] for process in summary["processes"]}
        assert kinds == {"gateway", "shard", "supervisor", "worker"}
        assert len(summary["traces"]) == 1

    def test_trace_off_gateway_ships_no_context(self):
        async def scenario():
            gateway = Gateway(
                GatewayConfig(shards=1, workers=0), ServiceConfig()
            )
            await gateway.start()
            response = await gateway.handle_request({
                "op": "analyze", "text": APP, "entries": [APP_ENTRY],
            })
            await gateway.stop()
            return response

        response = asyncio.run(scenario())
        assert response["ok"]
        assert TRACE_CONTEXT_KEY not in response


class TestStateDumps:
    """--trace-states: per-pass table_state events, capped."""

    def _trace(self, tmp_path, budget):
        from repro.analysis.driver import Analyzer

        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(path)
        analyzer = Analyzer(APP, tracer=tracer, trace_states=budget)
        analyzer.analyze([APP_ENTRY])
        tracer.close()
        return read_trace(path)

    def test_state_dumps_ride_the_iteration_events(self, tmp_path):
        records = self._trace(tmp_path, budget=10)
        states = [r for r in records if r["name"] == "table_state"]
        iterations = [
            r for r in records if r["name"] == "fixpoint_iteration"
        ]
        assert states and len(states) == len(iterations)
        state = states[0]["attrs"]["state"]
        assert state["entries"] and "widenings" in state
        entry = state["entries"][0]
        assert {"key", "success", "status", "updates",
                "frontier", "frozen"} <= set(entry)
        # First dump: everything is frontier; the converged last pass
        # changed nothing, so its frontier is empty.
        assert all(e["frontier"] for e in state["entries"])
        final = states[-1]["attrs"]["state"]
        assert not any(e["frontier"] for e in final["entries"])

    def test_budget_caps_the_dumps(self, tmp_path):
        records = self._trace(tmp_path, budget=1)
        states = [r for r in records if r["name"] == "table_state"]
        assert len(states) == 1

    def test_zero_budget_emits_none(self, tmp_path):
        records = self._trace(tmp_path, budget=0)
        assert not any(r["name"] == "table_state" for r in records)


class TestViewer:
    """render_html: self-contained page, embedded or picker mode."""

    def test_embedded_page_is_self_contained(self, tmp_path):
        from repro.analysis.driver import Analyzer

        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(path)
        analyzer = Analyzer(APP, tracer=tracer, trace_states=4)
        analyzer.analyze([APP_ENTRY])
        tracer.close()
        html = render_html(read_trace(path), title="app <trace>")
        assert html.startswith("<!DOCTYPE html>")
        assert "app &lt;trace&gt;" in html
        assert "table_state" in html  # the embedded data
        assert "src=" not in html  # no external resources
        # The embedded JSON must not close the carrier script tag.
        payload = html.split(
            '<script id="trace-data" type="application/json">', 1
        )[1].split("</script>", 1)[0]
        assert "</" not in payload
        assert json.loads(payload.replace("<\\/", "</"))

    def test_picker_page_has_no_embedded_data(self):
        html = render_html(None)
        payload = html.split(
            '<script id="trace-data" type="application/json">', 1
        )[1].split("</script>", 1)[0]
        assert payload.strip() == ""
        assert 'id="picker"' in html

    def test_metrics_account_the_render(self):
        from repro.obs import MetricsRegistry

        buffer = io.StringIO()
        tracer = Tracer(buffer, process="main")
        tracer.begin("request")
        tracer.end()
        metrics = MetricsRegistry()
        render_html(_records(buffer), metrics=metrics)
        snapshot = metrics.snapshot()
        assert snapshot["viewer.renders"]["value"] == 1
        assert snapshot["viewer.embedded_records"]["value"] == 2
        assert snapshot["viewer.html_bytes"]["value"] > 0


class TestTraceCli:
    """repro-trace stitch/check/html."""

    def _write_trace(self, tmp_path):
        from repro.cli import main_analyze

        trace = str(tmp_path / "trace.jsonl")
        assert main_analyze([
            "examples/nrev.pl", "nrev(glist, var)",
            "--trace-out", trace, "--trace-states", "4",
        ]) == 0
        return trace

    def test_check_valid_trace(self, tmp_path, capsys):
        from repro.cli import main_trace

        trace = self._write_trace(tmp_path)
        capsys.readouterr()  # drain the analyze run's own report
        assert main_trace(["check", trace]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["spans"] >= 1

    def test_check_rejects_a_torn_trace(self, tmp_path, capsys):
        from repro.cli import main_trace

        trace = self._write_trace(tmp_path)
        records = read_trace(trace)
        # Drop the end records: unclosed spans must fail the check.
        with open(trace, "w", encoding="utf-8") as handle:
            for record in records:
                if record["kind"] != "end":
                    handle.write(json.dumps(record) + "\n")
        assert main_trace(["check", trace]) == 1
        assert "invalid trace" in capsys.readouterr().err

    def test_check_rejects_an_unreadable_trace(self, tmp_path, capsys):
        import pytest

        from repro.cli import main_trace

        trace = str(tmp_path / "torn.jsonl")
        # A crashed writer can leave a torn final line: structured
        # one-line failure, not a JSONDecodeError traceback.
        with open(trace, "w", encoding="utf-8") as handle:
            handle.write('{"kind": "begin", "span": 1, "na')
        with pytest.raises(SystemExit) as excinfo:
            main_trace(["check", trace])
        assert excinfo.value.code == 1
        assert "unreadable trace" in capsys.readouterr().err

    def test_stitch_writes_qualified_records(self, tmp_path):
        from repro.cli import main_trace

        trace = self._write_trace(tmp_path)
        out = str(tmp_path / "stitched.jsonl")
        assert main_trace(["stitch", trace, "--out", out]) == 0
        stitched = read_trace(out)
        assert all(
            isinstance(record["span"], (str, type(None)))
            for record in stitched
        )
        validate_stitched(stitched)

    def test_html_writes_the_viewer(self, tmp_path, capsys):
        from repro.cli import main_trace

        trace = self._write_trace(tmp_path)
        out = str(tmp_path / "trace.html")
        assert main_trace(["html", trace, "--out", out]) == 0
        with open(out, "r", encoding="utf-8") as handle:
            assert handle.read(15) == "<!DOCTYPE html>"

    def test_html_picker_without_a_trace(self, tmp_path):
        from repro.cli import main_trace

        out = str(tmp_path / "picker.html")
        assert main_trace(["html", "--out", out]) == 0
        with open(out, "r", encoding="utf-8") as handle:
            assert 'id="picker"' in handle.read()
