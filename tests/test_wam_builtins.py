"""Cell-level tests for every concrete-machine builtin."""

import pytest

from repro.errors import PrologError
from tests.conftest import wam_texts

EMPTY = "dummy."


def ok(goal, program=EMPTY):
    return len(wam_texts(program, f"go :- {goal}" and goal)) >= 0


def run(goal, program=EMPTY):
    return wam_texts(program, goal)


class TestControl:
    def test_true_fail(self):
        assert run("t", "t :- true.") == [{}]
        assert run("t", "t :- fail.") == []
        assert run("t", "t :- false.") == []


class TestUnification:
    def test_unify(self):
        assert run("u(X)", "u(X) :- X = f(Y, Y).")[0]["X"].startswith("f(")

    def test_unify_fail(self):
        assert run("t", "t :- a = b.") == []

    def test_not_unify(self):
        assert run("t", "t :- f(a) \\= f(b).") == [{}]
        assert run("t", "t :- f(a) \\= f(a).") == []

    def test_not_unify_restores_bindings(self):
        assert run("t(X)", "t(X) :- f(X) \\= g(1), X = ok.") == [{"X": "ok"}]


class TestStructural:
    def test_identity(self):
        assert run("t", "t :- f(a, 1) == f(a, 1).") == [{}]
        assert run("t", "t :- f(X) == f(Y).", ) == []

    def test_not_identity(self):
        assert run("t", "t :- f(X) \\== f(Y).") == [{}]

    def test_ordering_chain(self):
        program = "t :- X @< 1, 1 @< a, a @< f(b), f(b) @< f(b, c)."
        assert run("t", program) == [{}]

    def test_compare(self):
        assert run("c(O)", "c(O) :- compare(O, 1, 2).") == [{"O": "<"}]
        assert run("c(O)", "c(O) :- compare(O, f(b), f(a)).") == [{"O": ">"}]

    def test_compare_recursive_args(self):
        assert run("c(O)", "c(O) :- compare(O, f(1, 2), f(1, 3)).") == [
            {"O": "<"}
        ]


class TestTypeTests:
    CASES = [
        ("var(X)", 1),
        ("nonvar(a)", 1),
        ("nonvar(X)", 0),
        ("atom([])", 1),
        ("atom([a])", 0),
        ("number(2.5)", 1),
        ("integer(3)", 1),
        ("integer(2.5)", 0),
        ("float(2.5)", 1),
        ("atomic(abc)", 1),
        ("atomic([a])", 0),
        ("compound([a])", 1),
        ("compound(g(1))", 1),
        ("compound(g)", 0),
        ("callable(g)", 1),
        ("callable([a|b])", 1),
        ("callable(9)", 0),
    ]

    @pytest.mark.parametrize("goal,count", CASES)
    def test_case(self, goal, count):
        program = f"t :- {goal}."
        assert len(run("t", program)) == count


class TestArithmetic:
    def test_is(self):
        assert run("v(X)", "v(X) :- X is 2 + 3 * 4.") == [{"X": "14"}]

    def test_is_nested_expression_from_cells(self):
        assert run("v(X)", "v(X) :- Y = 4, X is Y * Y - 1.") == [{"X": "15"}]

    def test_is_unbound_raises(self):
        with pytest.raises(PrologError):
            run("v(X)", "v(X) :- X is Y + 1.")

    def test_comparisons(self):
        assert run("t", "t :- 1 < 2, 2 =< 2, 2 > 1, 2 >= 2, 2 =:= 2, 1 =\\= 2.") == [{}]


class TestInspection:
    def test_functor_decompose(self):
        assert run("f(N, A)", "f(N, A) :- functor(foo(x, y, z), N, A).") == [
            {"N": "foo", "A": "3"}
        ]

    def test_functor_construct(self):
        result = run("f(T)", "f(T) :- functor(T, pair, 2).")
        assert result[0]["T"].startswith("pair(")

    def test_functor_on_list_cell(self):
        assert run("f(N, A)", "f(N, A) :- functor([1, 2], N, A).") == [
            {"N": ".", "A": "2"}
        ]

    def test_functor_construct_list(self):
        result = run("f(T)", "f(T) :- functor(T, '.', 2).")
        assert result[0]["T"].startswith("[")

    def test_arg(self):
        assert run("a(X)", "a(X) :- arg(2, foo(p, q, r), X).") == [{"X": "q"}]
        assert run("a(X)", "a(X) :- arg(1, [h, t], X).") == [{"X": "h"}]
        assert run("a(X)", "a(X) :- arg(5, foo(p), X).") == []

    def test_univ_both_ways(self):
        assert run("u(L)", "u(L) :- foo(1, b) =.. L.") == [{"L": "[foo, 1, b]"}]
        assert run("u(T)", "u(T) :- T =.. [bar, x].") == [{"T": "bar(x)"}]
        assert run("u(T)", "u(T) :- T =.. [baz].") == [{"T": "baz"}]

    def test_univ_list_cell(self):
        assert run("u(L)", "u(L) :- [a] =.. L.") == [{"L": "[., a, []]"}]
        assert run("u(T)", "u(T) :- T =.. ['.', h, []].") == [{"T": "[h]"}]

    def test_copy_term(self):
        assert run("c(Y)", "c(Y) :- copy_term(f(X, X), f(1, Y)).") == [
            {"Y": "1"}
        ]


class TestAtomAndOutput:
    def test_atom_length(self):
        assert run("l(N)", "l(N) :- atom_length(abcde, N).") == [{"N": "5"}]

    def test_name_both_ways(self):
        assert run("n(L)", "n(L) :- name(ab, L).") == [{"L": "[97, 98]"}]
        assert run("n(X)", 'n(X) :- name(X, "99").') == [{"X": "99"}]

    def test_write_and_nl(self):
        from repro.prolog import Program, parse_term
        from repro.wam import Machine, compile_program

        machine = Machine(
            compile_program(
                Program.from_text("say :- write(f(1)), nl, writeq('x y').")
            )
        )
        machine.run_once(parse_term("say"))
        assert "".join(machine.output) == "f(1)\n'x y'"
