"""Tests for the heap cell model."""

import pytest

from repro.errors import MachineError
from repro.prolog import parse_term, term_to_text
from repro.prolog.terms import Atom, Int, Var
from repro.wam.cells import CON, LIS, REF, STR, Heap, cell_type


class TestAllocation:
    def test_new_var_self_ref(self):
        heap = Heap()
        cell = heap.new_var()
        assert cell == (REF, 0)
        assert heap.cells[0] == cell

    def test_push_returns_address(self):
        heap = Heap()
        assert heap.push((CON, Atom("a"))) == 0
        assert heap.push((CON, Atom("b"))) == 1

    def test_top(self):
        heap = Heap()
        assert heap.top == 0
        heap.new_var()
        assert heap.top == 1


class TestBindingAndTrail:
    def test_set_cell_trails_old_value(self):
        heap = Heap()
        heap.new_var()
        mark = heap.trail_mark()
        heap.set_cell(0, (CON, Atom("a")))
        assert heap.cells[0] == (CON, Atom("a"))
        heap.undo_to(mark)
        assert heap.cells[0] == (REF, 0)

    def test_undo_with_heap_truncation(self):
        heap = Heap()
        heap.new_var()
        mark = heap.trail_mark()
        top = heap.top
        heap.new_var()
        heap.set_cell(0, (REF, 1))
        heap.set_cell(1, (CON, Int(1)))
        heap.undo_to(mark, top)
        assert heap.top == 1
        assert heap.cells[0] == (REF, 0)

    def test_nested_undo(self):
        heap = Heap()
        heap.new_var()
        outer = heap.trail_mark()
        heap.set_cell(0, (CON, Atom("a")))
        inner = heap.trail_mark()
        heap.set_cell(0, (CON, Atom("b")))
        heap.undo_to(inner)
        assert heap.cells[0] == (CON, Atom("a"))
        heap.undo_to(outer)
        assert heap.cells[0] == (REF, 0)


class TestDeref:
    def test_unbound(self):
        heap = Heap()
        cell = heap.new_var()
        assert heap.deref(cell) == cell

    def test_chain(self):
        heap = Heap()
        a = heap.new_var()
        b = heap.new_var()
        heap.set_cell(0, (REF, 1))
        heap.set_cell(1, (CON, Int(5)))
        assert heap.deref(a) == (CON, Int(5))

    def test_is_unbound(self):
        heap = Heap()
        cell = heap.new_var()
        assert heap.is_unbound(cell)
        heap.set_cell(0, (CON, Atom("x")))
        assert not heap.is_unbound(cell)


class TestEncodeDecode:
    @pytest.mark.parametrize(
        "text",
        ["foo", "42", "1.5", "f(a, b)", "[1, 2, 3]", "[]", "f(g(h(1)))"],
    )
    def test_ground_roundtrip(self, text):
        heap = Heap()
        term = parse_term(text)
        cell = heap.encode(term)
        decoded = heap.decode(cell)
        assert term_to_text(decoded) == term_to_text(term)

    @pytest.mark.parametrize("text", ["[a | T]", "f(g(h(X)), [Y, X])"])
    def test_var_roundtrip_modulo_renaming(self, text):
        import re

        heap = Heap()
        term = parse_term(text)
        decoded = heap.decode(heap.encode(term))

        def normalize(t):
            out = term_to_text(t)
            names = {}
            for name in re.findall(r"\b(?:_G\d+|[A-Z]\w*)", out):
                names.setdefault(name, f"V{len(names)}")
            for name, replacement in names.items():
                out = out.replace(name, replacement)
            return out

        assert normalize(decoded) == normalize(term)

    def test_encode_shares_variables(self):
        heap = Heap()
        x = Var("X")
        term = parse_term("f(A, A)")
        cell = heap.encode(term)
        decoded = heap.decode(cell)
        assert decoded.args[0] is decoded.args[1]

    def test_decode_names_consistent(self):
        heap = Heap()
        cell = heap.encode(parse_term("f(A, A, B)"))
        names = {}
        decoded = heap.decode(cell, names)
        assert decoded.args[0] is decoded.args[1]
        assert decoded.args[0] is not decoded.args[2]

    def test_list_layout_contiguous(self):
        heap = Heap()
        cell = heap.encode(parse_term("[1, 2]"))
        assert cell[0] == LIS
        address = cell[1]
        assert heap.cells[address] == (CON, Int(1))
        assert heap.cells[address + 1][0] == LIS

    def test_struct_layout(self):
        heap = Heap()
        cell = heap.encode(parse_term("f(a, b)"))
        assert cell[0] == STR
        functor_address = cell[1]
        assert heap.cells[functor_address] == ("fun", ("f", 2))
        assert heap.cells[functor_address + 1] == (CON, Atom("a"))


class TestCellType:
    def test_classes(self):
        heap = Heap()
        assert cell_type(heap.new_var()) == "var"
        assert cell_type((CON, Atom("x"))) == "const"
        assert cell_type((LIS, 0)) == "list"
        assert cell_type((STR, 0)) == "struct"

    def test_unknown_raises(self):
        with pytest.raises(MachineError):
            cell_type(("bogus", 0))
