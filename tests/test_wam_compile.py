"""Tests for the Prolog-to-WAM compiler."""

import pytest

from repro.prolog import Clause, Program, parse_term
from repro.wam import CompilerOptions, compile_clause, compile_program
from repro.wam.compile.classify import analyze_clause, goal_kind
from repro.wam.compile.predicate import _first_argument_key, compile_predicate
from repro.wam.instructions import Reg
from repro.wam.listing import format_unit


def clause(text):
    return Clause.from_term(parse_term(text))


def ops(instructions):
    return [i.op for i in instructions]


class TestGoalKind:
    def test_cut(self):
        assert goal_kind(parse_term("!")) == "cut"

    def test_builtin(self):
        assert goal_kind(parse_term("X is 1")) == "builtin"

    def test_user_call(self):
        assert goal_kind(parse_term("foo(X)")) == "call"


class TestClassification:
    def test_fact_no_environment(self):
        analysis = analyze_clause(clause("p(a)"))
        assert not analysis.needs_environment

    def test_chain_rule_no_environment(self):
        analysis = analyze_clause(clause("p(X) :- q(X)"))
        assert not analysis.needs_environment

    def test_two_calls_need_environment(self):
        analysis = analyze_clause(clause("p(X) :- q(X), r(X)"))
        assert analysis.needs_environment

    def test_permanent_detection(self):
        analysis = analyze_clause(clause("p(X, Y) :- q(X), r(Y)"))
        permanents = [
            use.var.name
            for use in analysis.variables.values()
            if use.is_permanent
        ]
        assert permanents == ["Y"]

    def test_builtins_do_not_split_chunks(self):
        analysis = analyze_clause(clause("p(X, Y) :- Y is X + 1, q(Y)"))
        assert analysis.chunk_count == 2
        assert not any(
            use.is_permanent for use in analysis.variables.values()
        )

    def test_permanent_ordering_later_dying_lower(self):
        analysis = analyze_clause(
            clause("p(A, B) :- q(A, B), r(B), s(A, B), t(B)")
        )
        uses = {
            use.var.name: use
            for use in analysis.variables.values()
            if use.is_permanent
        }
        assert uses["B"].register.index < uses["A"].register.index

    def test_trimming_counts_decrease(self):
        analysis = analyze_clause(
            clause("p(A, B, C) :- q(A, B, C), r(B, C), s(C)")
        )
        assert analysis.live_after_call == sorted(
            analysis.live_after_call, reverse=True
        )

    def test_neck_cut_flag(self):
        analysis = analyze_clause(clause("p :- !, q"))
        assert analysis.has_neck_cut
        assert not analysis.has_deep_cut

    def test_deep_cut_flag(self):
        analysis = analyze_clause(clause("p :- q, !, r"))
        assert analysis.has_deep_cut
        assert analysis.level_slot == 1

    def test_temp_start_above_arities(self):
        analysis = analyze_clause(clause("p(A) :- q(A, B, C, D, E)"))
        assert analysis.temp_start == 6


class TestClauseEmission:
    def test_fact_ends_with_proceed(self):
        code = compile_clause(clause("p(a)"))
        assert ops(code) == ["get_constant", "proceed"]

    def test_chain_rule_uses_execute(self):
        code = compile_clause(clause("p(X) :- q(X)"))
        assert ops(code)[-1] == "execute"
        assert "allocate" not in ops(code)

    def test_two_calls_allocate_deallocate(self):
        code = compile_clause(clause("p :- q, r"))
        assert ops(code) == ["allocate", "call", "deallocate", "execute"]

    def test_last_call_optimization(self):
        code = compile_clause(clause("p(X) :- q, r(X)"))
        names = ops(code)
        assert names[-1] == "execute"
        assert names[-2] == "deallocate"

    def test_builtin_last_ends_with_proceed(self):
        code = compile_clause(clause("p(X) :- q, X = 1"))
        assert ops(code)[-1] == "proceed"
        assert ops(code)[-2] == "deallocate"

    def test_head_constant(self):
        code = compile_clause(clause("p(a, 1)"))
        assert ops(code)[:2] == ["get_constant", "get_constant"]

    def test_head_nil(self):
        code = compile_clause(clause("p([])"))
        assert ops(code)[0] == "get_nil"

    def test_head_variable_first_then_value(self):
        code = compile_clause(clause("p(X, X)"))
        assert ops(code) == ["get_variable", "get_value", "proceed"]

    def test_anonymous_head_arg_no_code(self):
        code = compile_clause(clause("p(_, _)"))
        assert ops(code) == ["proceed"]

    def test_unify_void_merging(self):
        code = compile_clause(clause("p(f(_, _, X))"))
        names = ops(code)
        assert "unify_void" in names
        void = [i for i in code if i.op == "unify_void"][0]
        assert void.args[0] == 2

    def test_body_constant_args(self):
        code = compile_clause(clause("p :- q(a, 1)"))
        assert ops(code)[:2] == ["put_constant", "put_constant"]

    def test_body_structure_built_bottom_up(self):
        code = compile_clause(clause("p :- q(f(g(a)))"))
        names = ops(code)
        # g/1 must be built before f/1.
        first_ps = names.index("put_structure")
        instr = code[first_ps]
        assert instr.args[0] == ("g", 1)

    def test_body_list(self):
        code = compile_clause(clause("p(X) :- q([X])"))
        names = ops(code)
        assert "put_list" in names

    def test_neck_cut_emitted(self):
        code = compile_clause(clause("p :- !, q"))
        assert "neck_cut" in ops(code)

    def test_deep_cut_get_level(self):
        code = compile_clause(clause("p :- q, !, r"))
        names = ops(code)
        assert names[0] == "allocate"
        assert names[1] == "get_level"
        assert "cut" in names

    def test_trimming_in_call_operands(self):
        options = CompilerOptions(environment_trimming=True)
        code = compile_clause(
            clause("p(A, B) :- q(A, B), r(B), s"), options
        )
        calls = [i for i in code if i.op == "call"]
        lives = [i.args[1] for i in calls]
        assert lives == sorted(lives, reverse=True)

    def test_no_trimming_keeps_full_size(self):
        options = CompilerOptions(environment_trimming=False)
        code = compile_clause(clause("p(A, B) :- q(A, B), r(B), s"), options)
        calls = [i for i in code if i.op == "call"]
        assert all(c.args[1] == calls[0].args[1] for c in calls)


class TestFigure2:
    """The paper's Figure 2: the head of p(a, [f(V)|L])."""

    def test_exact_instruction_sequence(self):
        code = compile_clause(clause("p(a, [f(V)|L]) :- true"))
        names = ops(code)
        assert names == [
            "get_constant",   # get_const a, A1
            "get_list",       # get_list A2
            "unify_variable",  # unify_var X3 (the car)
            "unify_variable",  # unify_var L (the cdr)
            "get_structure",   # get_struct f/1, X3
            "unify_variable",  # unify_var V
            "proceed",
        ]

    def test_breadth_first_order(self):
        # The nested struct is processed after the whole list level.
        code = compile_clause(clause("p([f(a), g(b)])"))
        names = ops(code)
        structure_positions = [
            index
            for index, name in enumerate(names)
            if name == "get_structure"
        ]
        unify_positions = [
            index for index, name in enumerate(names) if name == "unify_variable"
        ]
        assert all(u < structure_positions[0] for u in unify_positions[:2])


class TestPredicateAssembly:
    def test_single_clause_no_chain(self):
        program = Program.from_text("p(a).")
        unit = compile_predicate(program.predicate(("p", 1)))
        assert "try_me_else" not in [i.op for i in unit.instructions]

    def test_chain_shape(self):
        program = Program.from_text("p(X). p(Y). p(Z).")
        unit = compile_predicate(program.predicate(("p", 1)))
        names = [i.op for i in unit.instructions if i.op != "label"]
        assert names.count("try_me_else") == 1
        assert names.count("retry_me_else") == 1
        assert names.count("trust_me") == 1

    def test_clause_labels_recorded(self):
        program = Program.from_text("p(a). p(b).")
        unit = compile_predicate(program.predicate(("p", 1)))
        assert len(unit.clause_labels) == 2

    def test_switch_emitted_for_distinct_keys(self):
        program = Program.from_text("p(a). p(b). p([]). p([X|Y]). p(f(Z)).")
        unit = compile_predicate(program.predicate(("p", 1)))
        names = [i.op for i in unit.instructions]
        assert "switch_on_term" in names
        assert "switch_on_constant" in names
        assert "switch_on_structure" in names

    def test_no_switch_with_var_clause(self):
        program = Program.from_text("p(a). p(X).")
        unit = compile_predicate(program.predicate(("p", 1)))
        assert "switch_on_term" not in [i.op for i in unit.instructions]

    def test_no_switch_when_disabled(self):
        program = Program.from_text("p(a). p(b).")
        unit = compile_predicate(
            program.predicate(("p", 1)), CompilerOptions(indexing=False)
        )
        assert "switch_on_term" not in [i.op for i in unit.instructions]

    def test_subchain_for_shared_key(self):
        program = Program.from_text("p([X|A]). p([Y|B]). p(a).")
        unit = compile_predicate(program.predicate(("p", 1)))
        names = [i.op for i in unit.instructions]
        assert "try" in names and "trust" in names

    def test_first_argument_keys(self):
        assert _first_argument_key(parse_term("p(X)")) == "var"
        assert _first_argument_key(parse_term("p([])")) == (
            "const",
            parse_term("[]"),
        )
        assert _first_argument_key(parse_term("p([H|T])")) == "list"
        assert _first_argument_key(parse_term("p(f(X))")) == ("struct", ("f", 1))
        assert _first_argument_key(parse_term("p")) == "var"


class TestProgramCompilation:
    def test_entry_table(self, append_nrev):
        compiled = compile_program(Program.from_text(append_nrev))
        assert ("app", 3) in compiled.code.entry
        assert ("nrev", 2) in compiled.code.entry

    def test_service_instructions(self, append_nrev):
        compiled = compile_program(Program.from_text(append_nrev))
        assert compiled.code.at(0).op == "halt"
        assert compiled.code.at(1).op == "fail"
        assert compiled.code.at(2).op == "proceed"

    def test_size_of(self, append_nrev):
        compiled = compile_program(Program.from_text(append_nrev))
        total = compiled.total_size()
        assert total == sum(
            compiled.size_of(ind) for ind in compiled.code.entry
        )

    def test_clause_entries_point_past_chain(self, append_nrev):
        compiled = compile_program(Program.from_text(append_nrev))
        for address in compiled.clause_entries(("app", 3)):
            op = compiled.code.at(address).op
            assert op not in ("try_me_else", "retry_me_else", "trust_me")

    def test_cannot_redefine_builtin(self):
        from repro.errors import CompileError

        with pytest.raises(CompileError):
            compile_program(Program.from_text("is(X, Y)."))

    def test_normalization_applied(self):
        compiled = compile_program(Program.from_text("p :- (a ; b). a. b."))
        assert any(ind[0].startswith("$or") for ind in compiled.code.entry)

    def test_query_compilation(self, append_nrev):
        compiled = compile_program(Program.from_text(append_nrev))
        indicator, variables = compiled.compile_query(
            parse_term("app(X, Y, [1])")
        )
        assert indicator[1] == 2
        assert [v.name for v in variables] == ["X", "Y"]

    def test_format_unit_readable(self):
        program = Program.from_text("p(a). p(b).")
        unit = compile_predicate(program.predicate(("p", 1)))
        text = format_unit(unit.instructions, arity=1)
        assert "get_constant a, A1" in text
