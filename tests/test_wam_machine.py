"""Tests for the concrete WAM: execution, backtracking, cut, builtins."""

import pytest

from repro.errors import PrologError
from repro.prolog import Program, parse_term
from repro.wam import CompilerOptions, Machine, compile_program
from tests.conftest import solve_texts, wam_texts


class TestBasicExecution:
    def test_fact(self):
        assert wam_texts("p(a).", "p(a)") == [{}]

    def test_fact_fails(self):
        assert wam_texts("p(a).", "p(b)") == []

    def test_binding(self):
        assert wam_texts("p(a).", "p(X)") == [{"X": "a"}]

    def test_zero_arity(self):
        assert wam_texts("go.", "go") == [{}]

    def test_multiple_clauses_in_order(self):
        assert wam_texts("p(1). p(2). p(3).", "p(X)") == [
            {"X": "1"},
            {"X": "2"},
            {"X": "3"},
        ]

    def test_rule_chain(self):
        assert wam_texts("a(X) :- b(X). b(X) :- c(X). c(7).", "a(X)") == [
            {"X": "7"}
        ]

    def test_structure_head(self):
        assert wam_texts("p(f(X, g(X))).", "p(f(1, Y))") == [{"Y": "g(1)"}]

    def test_structure_construction_in_body(self):
        assert wam_texts("p(X) :- q(f(X, [X])). q(f(1, L)).", "p(X)") == [
            {"X": "1"}
        ]

    def test_unknown_predicate(self):
        with pytest.raises(PrologError):
            wam_texts("p.", "nothere")

    def test_deep_recursion_iterative(self):
        # The machine must not hit Python's recursion limit.
        text = """
        count(0) :- !.
        count(N) :- N1 is N - 1, count(N1).
        """
        assert wam_texts(text, "count(20000)") == [{}]


class TestBacktrackingAndChoice:
    def test_cartesian(self):
        text = "pair(X, Y) :- n(X), n(Y). n(1). n(2)."
        assert len(wam_texts(text, "pair(A, B)")) == 4

    def test_bindings_restored(self):
        text = "p(X) :- q(X), r(X). q(1). q(2). r(2)."
        assert wam_texts(text, "p(X)") == [{"X": "2"}]

    def test_append_splits(self, append_nrev):
        assert len(wam_texts(append_nrev, "app(X, Y, [1, 2, 3])")) == 4

    def test_heap_reclaimed_on_backtrack(self, append_nrev):
        compiled = compile_program(Program.from_text(append_nrev))
        machine = Machine(compiled)
        list(machine.run(parse_term("app(X, Y, [1, 2])")))
        # The trail must be fully unwound at exhaustion.
        assert machine.b is None

    def test_failure_driven_loop(self):
        text = "p(1). p(2). all :- p(_), fail. all."
        assert wam_texts(text, "all") == [{}]


class TestCut:
    def test_neck_cut(self):
        text = "max(X, Y, X) :- X >= Y, !.\nmax(_, Y, Y)."
        assert wam_texts(text, "max(5, 3, M)") == [{"M": "5"}]
        assert wam_texts(text, "max(2, 3, M)") == [{"M": "3"}]

    def test_deep_cut(self):
        text = """
        p(X, Y) :- q(X), !, r(Y).
        q(1). q(2).
        r(a). r(b).
        """
        assert wam_texts(text, "p(X, Y)") == [
            {"X": "1", "Y": "a"},
            {"X": "1", "Y": "b"},
        ]

    def test_cut_then_fail(self):
        text = "p :- q, !, fail. p. q."
        assert wam_texts(text, "p") == []

    def test_cut_local(self):
        text = """
        outer(X) :- inner(X).
        outer(99).
        inner(X) :- pick(X), !.
        pick(1). pick(2).
        """
        assert wam_texts(text, "outer(X)") == [{"X": "1"}, {"X": "99"}]

    def test_if_then_else_via_normalization(self):
        text = "sign(X, pos) :- (X > 0 -> true ; fail).\nsign(X, neg) :- X < 0."
        assert wam_texts(text, "sign(5, S)") == [{"S": "pos"}]
        assert wam_texts(text, "sign(-5, S)") == [{"S": "neg"}]

    def test_negation_via_normalization(self):
        text = "q(1). p(X) :- \\+ q(X)."
        assert wam_texts(text, "p(2)") == [{}]
        assert wam_texts(text, "p(1)") == []


class TestBuiltinsOnMachine:
    def test_is(self):
        assert wam_texts("calc(X) :- X is 6 * 7.", "calc(R)") == [{"R": "42"}]

    def test_comparison(self):
        assert wam_texts("t :- 1 < 2, 2 =< 2, 3 > 1, 2 >= 2.", "t") == [{}]

    def test_unify_builtin(self):
        assert wam_texts("u(X) :- X = f(1).", "u(R)") == [{"R": "f(1)"}]

    def test_type_tests(self):
        text = "t(X) :- atom(X). n(X) :- number(X)."
        assert wam_texts(text, "t(foo)") == [{}]
        assert wam_texts(text, "t(1)") == []
        assert wam_texts(text, "n(3)") == [{}]

    def test_var_nonvar(self):
        assert wam_texts("v(X) :- var(X).", "v(_)") == [{}]
        assert wam_texts("v(X) :- var(X).", "v(a)") == []

    def test_functor_arg_univ(self):
        assert wam_texts("d(N, A) :- functor(f(x, y), N, A).", "d(N, A)") == [
            {"N": "f", "A": "2"}
        ]
        assert wam_texts("a(X) :- arg(1, f(7), X).", "a(X)") == [{"X": "7"}]
        assert wam_texts("u(L) :- f(a) =.. L.", "u(L)") == [{"L": "[f, a]"}]

    def test_structural_equality(self):
        assert wam_texts("s :- f(a) == f(a).", "s") == [{}]
        assert wam_texts("s :- f(a) == f(b).", "s") == []

    def test_output_buffered(self):
        compiled = compile_program(
            Program.from_text("hello :- write(hi), tab(1), write(42), nl.")
        )
        machine = Machine(compiled)
        assert list(machine.run(parse_term("hello"))) == [{}]
        assert "".join(machine.output) == "hi 42\n"

    def test_copy_term(self):
        text = "c(Y) :- copy_term(f(X, X), f(1, Y))."
        assert wam_texts(text, "c(Y)") == [{"Y": "1"}]


class TestIndexing:
    THREE_WAY = """
    kind(a, atom_a).
    kind(b, atom_b).
    kind([], nil).
    kind([_|_], cons).
    kind(f(_), struct_f).
    kind(1, one).
    """

    @pytest.mark.parametrize(
        "goal,expected",
        [
            ("kind(a, K)", "atom_a"),
            ("kind(b, K)", "atom_b"),
            ("kind([], K)", "nil"),
            ("kind([x], K)", "cons"),
            ("kind(f(z), K)", "struct_f"),
            ("kind(1, K)", "one"),
        ],
    )
    def test_dispatch(self, goal, expected):
        assert wam_texts(self.THREE_WAY, goal) == [{"K": expected}]

    def test_unknown_constant_fails(self):
        assert wam_texts(self.THREE_WAY, "kind(zzz, K)") == []

    def test_unknown_structure_fails(self):
        assert wam_texts(self.THREE_WAY, "kind(g(1), K)") == []

    def test_var_arg_enumerates_all(self):
        assert len(wam_texts(self.THREE_WAY, "kind(X, K)")) == 6

    def test_indexing_saves_instructions(self):
        program_text = self.THREE_WAY + "go :- kind(f(0), _)."
        with_index = Machine(compile_program(Program.from_text(program_text)))
        list(with_index.run(parse_term("go")))
        without = Machine(
            compile_program(
                Program.from_text(program_text), CompilerOptions(indexing=False)
            )
        )
        list(without.run(parse_term("go")))
        assert with_index.instruction_count < without.instruction_count

    def test_indexing_same_results(self):
        import re

        def normalized(solutions):
            return [
                {k: re.sub(r"_G\d+", "_", v) for k, v in s.items()}
                for s in solutions
            ]

        for goal in ["kind(X, K)", "kind(b, K)", "kind([x,y], K)"]:
            indexed = wam_texts(self.THREE_WAY, goal)
            plain = wam_texts(
                self.THREE_WAY, goal, options=CompilerOptions(indexing=False)
            )
            assert normalized(indexed) == normalized(plain)


class TestAgainstSolverOracle:
    PROGRAMS = [
        ("p(1). p(2). q(2). q(3). r(X) :- p(X), q(X).", "r(X)"),
        (
            "len([], 0). len([_|T], N) :- len(T, M), N is M + 1.",
            "len([a, b, c, d], N)",
        ),
        (
            "perm([], []). perm(L, [H|T]) :- sel(H, L, R), perm(R, T).\n"
            "sel(X, [X|T], T). sel(X, [H|T], [H|R]) :- sel(X, T, R).",
            "perm([1, 2, 3], P)",
        ),
        (
            "f(0, 0) :- !. f(N, R) :- M is N - 1, f(M, S), R is S + N.",
            "f(10, R)",
        ),
    ]

    @pytest.mark.parametrize("program,goal", PROGRAMS)
    def test_same_solutions(self, program, goal):
        assert wam_texts(program, goal) == solve_texts(program, goal)


class TestMachineLimits:
    def test_step_limit(self):
        compiled = compile_program(Program.from_text("loop :- loop."))
        machine = Machine(compiled, max_steps=500)
        with pytest.raises(PrologError) as info:
            list(machine.run(parse_term("loop")))
        assert info.value.kind == "resource_error"

    def test_instruction_count_grows(self, append_nrev):
        compiled = compile_program(Program.from_text(append_nrev))
        machine = Machine(compiled)
        list(machine.run(parse_term("nrev([1,2,3], R)")))
        assert machine.instruction_count > 10
