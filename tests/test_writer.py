"""Tests for the term writer (round-trips and quoting)."""

import pytest

from repro.prolog import parse_term, term_to_text
from repro.prolog.terms import Atom, Int, Struct, Var, make_list
from repro.prolog.writer import atom_needs_quotes


def roundtrip(text):
    term = parse_term(text)
    return parse_term(term_to_text(term, quoted=True))


class TestBasic:
    def test_atom(self):
        assert term_to_text(Atom("foo")) == "foo"

    def test_integer(self):
        assert term_to_text(Int(42)) == "42"

    def test_struct(self):
        assert term_to_text(parse_term("f(a, 1)")) == "f(a, 1)"

    def test_variable_name(self):
        assert term_to_text(Var("X")) == "X"

    def test_list(self):
        assert term_to_text(parse_term("[1, 2, 3]")) == "[1, 2, 3]"

    def test_partial_list(self):
        assert term_to_text(parse_term("[a | T]")) == "[a | T]"

    def test_curly(self):
        assert term_to_text(parse_term("{a}")) == "{a}"

    def test_nil(self):
        assert term_to_text(parse_term("[]")) == "[]"


class TestOperators:
    def test_infix(self):
        assert term_to_text(parse_term("a + b")) == "a + b"

    def test_precedence_parens(self):
        assert term_to_text(parse_term("(a + b) * c")) == "(a + b) * c"

    def test_no_needless_parens(self):
        assert term_to_text(parse_term("a + b * c")) == "a + b * c"

    def test_left_assoc_right_nesting(self):
        assert term_to_text(parse_term("a - (b - c)")) == "a - (b - c)"

    def test_clause(self):
        assert term_to_text(parse_term("h :- a, b")) == "h :- a, b"

    def test_prefix(self):
        assert term_to_text(parse_term("\\+ a")) == "\\+ a"

    def test_comma_struct(self):
        assert term_to_text(parse_term("(a, b)")) == "a, b"


class TestQuoting:
    def test_needs_quotes(self):
        assert atom_needs_quotes("hello world")
        assert atom_needs_quotes("Upper")
        assert atom_needs_quotes("")

    def test_no_quotes(self):
        assert not atom_needs_quotes("foo")
        assert not atom_needs_quotes("fooBar_1")
        assert not atom_needs_quotes("+")
        assert not atom_needs_quotes("[]")
        assert not atom_needs_quotes("!")

    def test_quoted_output(self):
        assert term_to_text(Atom("hello world"), quoted=True) == "'hello world'"

    def test_quote_escapes(self):
        assert term_to_text(Atom("it's"), quoted=True) == "'it\\'s'"

    def test_unquoted_output_raw(self):
        assert term_to_text(Atom("hello world")) == "hello world"


class TestRoundTrips:
    CASES = [
        "f(a, b, c)",
        "[1, 2, [3, x], 'Y']",
        "a + b * (c - d)",
        "h :- b1, (b2 ; b3)",
        "f('hello world', \\+ g)",
        "{x, y}",
        "-(1)",
        "[a | T]",
        "f(X, g(X, Y))",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_roundtrip(self, text):
        once = parse_term(text)
        twice = roundtrip(text)
        assert term_to_text(once) == term_to_text(twice)

    def test_max_depth(self):
        term = parse_term("f(g(h(i(j))))")
        assert "..." in term_to_text(term, max_depth=2)

    def test_long_list_depth_cap(self):
        term = make_list([Int(i) for i in range(20)])
        text = term_to_text(term, max_depth=3)
        assert "..." in text
