#!/usr/bin/env python3
"""Check every intra-repository link in the Markdown docs.

Run from anywhere: ``python tools/check_links.py`` (CI runs it in the
``docs`` job). Exit status 1 if any link is broken, with one line per
offence.

Checked, in every ``*.md`` file under the repository root and ``docs/``
(plus any directories passed as arguments):

* inline links and images, ``[text](target)`` / ``![alt](target)``;
* reference definitions, ``[label]: target``;
* bare code-span references to repo files like ```docs/serve.md```
  are NOT checked (too noisy) — write a real link if it must not rot.

A target is *intra-repo* when it is not an URL (``http://``,
``https://``, ``mailto:``) and not a pure in-page anchor (``#...``).
Relative targets resolve against the containing file's directory;
``/``-rooted targets resolve against the repository root. A fragment
(``file.md#section``) is checked against the target file's ATX
headings using GitHub's slug rules (lowercase, spaces to dashes,
punctuation dropped).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Files quoting material from *other* repositories verbatim — their
#: links point into trees we do not vendor, so they are not ours to fix.
EXCLUDE_NAMES = {"SNIPPETS.md", "PAPERS.md", "ISSUE.md"}

#: [text](target) and ![alt](target); target ends at the first ')' or
#: space (titles like (file.md "Title") are split off).
INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: [label]: target reference definitions.
REFERENCE_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
FENCE = re.compile(r"^(```|~~~)", re.MULTILINE)
HEADING = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$", re.MULTILINE)

EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def strip_code(text: str) -> str:
    """Drop fenced code blocks and inline code spans — links inside
    them are examples, not navigation."""
    lines = text.split("\n")
    kept = []
    in_fence = False
    for line in lines:
        if FENCE.match(line):
            in_fence = not in_fence
            continue
        kept.append("" if in_fence else line)
    return re.sub(r"`[^`]*`", "", "\n".join(kept))


def github_slug(heading: str) -> str:
    heading = re.sub(r"`([^`]*)`", r"\1", heading)          # unwrap code
    heading = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)  # unwrap links
    heading = heading.strip().lower()
    heading = re.sub(r"[^\w\- ]", "", heading, flags=re.UNICODE)
    return heading.replace(" ", "-")


def anchors_of(path: Path) -> set:
    slugs: set = set()
    try:
        text = strip_code(path.read_text(encoding="utf-8"))
    except (OSError, UnicodeDecodeError):
        return slugs
    seen: dict = {}
    for match in HEADING.finditer(text):
        slug = github_slug(match.group(1))
        # GitHub de-duplicates repeated headings with -1, -2, ...
        if slug in seen:
            seen[slug] += 1
            slug = f"{slug}-{seen[slug]}"
        else:
            seen[slug] = 0
        slugs.add(slug)
    return slugs


def markdown_files(roots) -> list:
    files = []
    for root in roots:
        root = Path(root)
        if root.is_file():
            files.append(root)
            continue
        for path in sorted(root.rglob("*.md")):
            if any(part.startswith(".") for part in path.parts):
                continue
            if path.name in EXCLUDE_NAMES:
                continue
            files.append(path)
    return files


def check_file(path: Path) -> list:
    problems = []
    try:
        shown = path.relative_to(REPO_ROOT)
    except ValueError:
        shown = path
    text = strip_code(path.read_text(encoding="utf-8"))
    targets = INLINE_LINK.findall(text) + REFERENCE_DEF.findall(text)
    for target in targets:
        if target.startswith(EXTERNAL_PREFIXES) or target.startswith("#"):
            continue
        target = target.strip("<>")
        base, _, fragment = target.partition("#")
        if base.startswith("/"):
            resolved = REPO_ROOT / base.lstrip("/")
        else:
            resolved = (path.parent / base).resolve()
        if not resolved.exists():
            problems.append(f"{shown}: broken link "
                            f"-> {target} ({base} does not exist)")
            continue
        if fragment and resolved.suffix == ".md":
            if fragment.lower() not in anchors_of(resolved):
                problems.append(
                    f"{shown}: broken anchor "
                    f"-> {target} (no heading slugs to '#{fragment}')"
                )
    return problems


def main(argv=None) -> int:
    roots = (argv if argv else None) or [
        REPO_ROOT, REPO_ROOT / "docs", REPO_ROOT / "examples",
    ]
    # rglob from the repo root already covers docs/ and examples/;
    # de-duplicate while keeping explicit extra roots usable.
    files, seen = [], set()
    for path in markdown_files(roots):
        if path not in seen:
            seen.add(path)
            files.append(path)
    problems = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"checked {len(files)} markdown files: "
          f"{'FAIL' if problems else 'ok'} ({len(problems)} broken)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
